//! Multi-drive DeepStore: scatter-gather across several devices.
//!
//! Figure 10b shows that "the compute capability of all DeepStore designs
//! scales linearly with the number of SSDs": a feature database sharded
//! over N drives is scanned by all of them concurrently, and the host
//! merges the per-drive top-K — the same map-reduce shape the engine uses
//! internally across channels (§4.7.1), lifted one level up.
//!
//! [`DeepStoreCluster`] shards `writeDB` round-robin, broadcasts
//! `loadModel`, fans a query out to every shard, and reduces the results;
//! the simulated latency of a cluster query is the slowest shard (drives
//! run concurrently).

use crate::api::{DeepStore, ModelId, QueryHit, QueryRequest};
use crate::config::{AcceleratorLevel, DeepStoreConfig};
use crate::engine::DbId;
use crate::error::{DeepStoreError, Result};
use deepstore_flash::{FlashError, SimDuration};
use deepstore_nn::{ModelGraph, Tensor};
use deepstore_systolic::topk::TopKSorter;
use serde::{Deserialize, Serialize};

/// A database sharded across the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ClusterDbId(pub u64);

/// A model registered on every drive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ClusterModelId(pub u64);

/// A hit annotated with the drive it came from.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClusterHit {
    /// Index of the drive holding the feature.
    pub drive: usize,
    /// Feature index *within that drive's shard*.
    pub hit: QueryHit,
    /// The feature's global index in the original write order.
    pub global_index: u64,
}

/// Result of a cluster-wide query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterQueryResult {
    /// Ranked hits, best first.
    pub top_k: Vec<ClusterHit>,
    /// Simulated latency: the slowest shard's query time.
    pub elapsed: SimDuration,
}

struct ShardedDb {
    per_drive: Vec<DbId>,
}

struct ClusterModel {
    per_drive: Vec<ModelId>,
}

/// A group of DeepStore drives behaving as one logical store.
pub struct DeepStoreCluster {
    drives: Vec<DeepStore>,
    dbs: Vec<ShardedDb>,
    models: Vec<ClusterModel>,
}

impl std::fmt::Debug for DeepStoreCluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DeepStoreCluster")
            .field("drives", &self.drives.len())
            .field("dbs", &self.dbs.len())
            .field("models", &self.models.len())
            .finish()
    }
}

impl DeepStoreCluster {
    /// Creates a cluster of `n` identical drives.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize, cfg: DeepStoreConfig) -> Self {
        assert!(n > 0, "cluster needs at least one drive");
        DeepStoreCluster {
            drives: (0..n).map(|_| DeepStore::in_memory(cfg.clone())).collect(),
            dbs: Vec::new(),
            models: Vec::new(),
        }
    }

    /// Drive count.
    pub fn drives(&self) -> usize {
        self.drives.len()
    }

    /// Shards a feature database round-robin across the drives.
    ///
    /// # Errors
    ///
    /// Propagates the first drive failure. Requires at least one feature
    /// per drive so every shard exists.
    pub fn write_db(&mut self, features: &[Tensor]) -> Result<ClusterDbId> {
        let n = self.drives.len();
        if features.len() < n {
            return Err(FlashError::SizeMismatch {
                expected: n,
                found: features.len(),
            }
            .into());
        }
        let mut per_drive = Vec::with_capacity(n);
        for (d, drive) in self.drives.iter_mut().enumerate() {
            let shard: Vec<Tensor> = features.iter().skip(d).step_by(n).cloned().collect();
            per_drive.push(drive.write_db(&shard)?);
        }
        let id = ClusterDbId(self.dbs.len() as u64);
        self.dbs.push(ShardedDb { per_drive });
        Ok(id)
    }

    /// Registers a model on every drive.
    ///
    /// # Errors
    ///
    /// Propagates the first drive failure.
    pub fn load_model(&mut self, graph: &ModelGraph) -> Result<ClusterModelId> {
        let mut per_drive = Vec::with_capacity(self.drives.len());
        for drive in &mut self.drives {
            per_drive.push(drive.load_model(graph)?);
        }
        let id = ClusterModelId(self.models.len() as u64);
        self.models.push(ClusterModel { per_drive });
        Ok(id)
    }

    /// Scatter-gather query: every drive scans its shard concurrently;
    /// the host merges the per-drive top-K into the global top-K.
    ///
    /// # Errors
    ///
    /// Returns [`FlashError::UnknownDb`] (wrapped) for a bad cluster
    /// database handle, [`DeepStoreError::UnknownModel`] for a bad
    /// cluster model handle, and propagates drive errors.
    pub fn query(
        &mut self,
        qfv: &Tensor,
        k: usize,
        model: ClusterModelId,
        db: ClusterDbId,
        level: AcceleratorLevel,
    ) -> Result<ClusterQueryResult> {
        let sharded = self
            .dbs
            .get(db.0 as usize)
            .ok_or(DeepStoreError::Flash(FlashError::UnknownDb(db.0)))?;
        let cmodel = self
            .models
            .get(model.0 as usize)
            .ok_or(DeepStoreError::UnknownModel(ModelId(model.0)))?;
        let n = self.drives.len();
        let mut elapsed = SimDuration::ZERO;
        let mut merged = TopKSorter::new(k);
        let mut hits: Vec<Vec<QueryHit>> = Vec::with_capacity(n);
        for (d, drive) in self.drives.iter_mut().enumerate() {
            let qid = drive.query(
                QueryRequest::new(qfv.clone(), cmodel.per_drive[d], sharded.per_drive[d])
                    .k(k)
                    .level(level),
            )?;
            let result = drive.results(qid)?;
            // Drives run concurrently: the cluster sees the slowest.
            elapsed = elapsed.max(result.elapsed);
            for (rank, h) in result.top_k.iter().enumerate() {
                // Encode (drive, rank) so the merged sorter can find the
                // original hit after ranking by score.
                merged.offer(h.score, (d * k + rank) as u64);
            }
            hits.push(result.top_k);
        }
        let top_k = merged
            .ranked()
            .into_iter()
            .map(|e| {
                let d = (e.feature_id as usize) / k;
                let rank = (e.feature_id as usize) % k;
                let hit = hits[d][rank];
                ClusterHit {
                    drive: d,
                    hit,
                    // Round-robin sharding: global = local * n + drive.
                    global_index: hit.feature_index * n as u64 + d as u64,
                }
            })
            .collect();
        Ok(ClusterQueryResult { top_k, elapsed })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepstore_nn::zoo;

    fn cluster(
        n: usize,
    ) -> (
        DeepStoreCluster,
        deepstore_nn::Model,
        ClusterDbId,
        ClusterModelId,
    ) {
        let model = zoo::textqa().seeded_metric(4);
        let mut c = DeepStoreCluster::new(n, DeepStoreConfig::small());
        let features: Vec<Tensor> = (0..60).map(|i| model.random_feature(i)).collect();
        let db = c.write_db(&features).unwrap();
        let mid = c.load_model(&ModelGraph::from_model(&model)).unwrap();
        (c, model, db, mid)
    }

    #[test]
    fn cluster_query_matches_single_drive_results() {
        let probe_seed = 23; // duplicate of feature 23
        let (mut single, model, sdb, smid) = cluster(1);
        let (mut multi, _, mdb, mmid) = cluster(4);
        let q = model.random_feature(probe_seed);
        let rs = single
            .query(&q, 5, smid, sdb, AcceleratorLevel::Channel)
            .unwrap();
        let rm = multi
            .query(&q, 5, mmid, mdb, AcceleratorLevel::Channel)
            .unwrap();
        let ids_single: Vec<u64> = rs.top_k.iter().map(|h| h.global_index).collect();
        let ids_multi: Vec<u64> = rm.top_k.iter().map(|h| h.global_index).collect();
        assert_eq!(ids_single, ids_multi);
        // The duplicate wins in both.
        assert_eq!(ids_multi[0], probe_seed);
    }

    #[test]
    fn cluster_latency_is_slowest_shard_not_sum() {
        // Large enough that streaming dominates the fixed costs: 2048
        // TextQA features = ~1.6 MB = ~100 pages.
        let model = zoo::textqa().seeded(4);
        let features: Vec<Tensor> = (0..2048).map(|i| model.random_feature(i)).collect();
        let graph = ModelGraph::from_model(&model);
        let mut single = DeepStoreCluster::new(1, DeepStoreConfig::small());
        let sdb = single.write_db(&features).unwrap();
        let smid = single.load_model(&graph).unwrap();
        let mut multi = DeepStoreCluster::new(4, DeepStoreConfig::small());
        let mdb = multi.write_db(&features).unwrap();
        let mmid = multi.load_model(&graph).unwrap();
        let q = model.random_feature(9999);
        let t1 = single
            .query(&q, 3, smid, sdb, AcceleratorLevel::Channel)
            .unwrap()
            .elapsed;
        let t4 = multi
            .query(&q, 3, mmid, mdb, AcceleratorLevel::Channel)
            .unwrap()
            .elapsed;
        // Four drives each scan a quarter of the data: faster than one.
        assert!(t4 < t1, "4-drive {t4} !< 1-drive {t1}");
    }

    #[test]
    fn global_indices_resolve_to_original_features() {
        let (mut c, model, db, mid) = cluster(3);
        let q = model.random_feature(700);
        let r = c.query(&q, 6, mid, db, AcceleratorLevel::Channel).unwrap();
        for h in &r.top_k {
            assert!(h.global_index < 60);
            assert_eq!(h.drive, (h.global_index % 3) as usize);
        }
        // All distinct.
        let mut idx: Vec<u64> = r.top_k.iter().map(|h| h.global_index).collect();
        idx.sort_unstable();
        idx.dedup();
        assert_eq!(idx.len(), 6);
    }

    #[test]
    fn bad_handles_are_rejected() {
        let (mut c, model, _, mid) = cluster(2);
        let q = model.random_feature(0);
        assert!(c
            .query(&q, 1, mid, ClusterDbId(9), AcceleratorLevel::Channel)
            .is_err());
        let (mut c2, _, db2, _) = cluster(2);
        assert!(c2
            .query(&q, 1, ClusterModelId(9), db2, AcceleratorLevel::Channel)
            .is_err());
    }

    #[test]
    fn too_few_features_for_sharding_is_error() {
        let model = zoo::textqa().seeded(1);
        let mut c = DeepStoreCluster::new(4, DeepStoreConfig::small());
        let features: Vec<Tensor> = (0..2).map(|i| model.random_feature(i)).collect();
        assert!(matches!(
            c.write_db(&features),
            Err(DeepStoreError::Flash(FlashError::SizeMismatch { .. }))
        ));
    }

    #[test]
    #[should_panic(expected = "at least one drive")]
    fn empty_cluster_panics() {
        let _ = DeepStoreCluster::new(0, DeepStoreConfig::small());
    }
}
