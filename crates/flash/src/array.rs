//! Functional flash array: stores real bytes with NAND semantics.
//!
//! The functional layer of the simulator keeps actual page contents so that
//! end-to-end queries return real results. NAND semantics are enforced:
//! pages must be erased (at block granularity) before being programmed, and
//! each block tracks an erase count for wear-leveling statistics.

use crate::fault::{FaultOutcome, FaultPlan, ReadFaultStats};
use crate::geometry::{PageAddr, SsdGeometry};
use crate::obs::{FlashEventCounts, FlashMetrics};
use crate::timing::ReadRetryPolicy;
use crate::{FlashError, Result};
use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// State of a single page. Pages start (and return to, after erase) the
/// `Erased` state implicitly by being absent from the state map.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PageState {
    Programmed,
}

/// A functional flash array.
///
/// Pages are stored sparsely, so a terabyte-scale geometry costs nothing
/// until data is written.
///
/// Reads take `&self`: independent flash channels serve page reads
/// concurrently, so the parallel query scan shares one array across its
/// shard workers. The read counter is atomic for exactly that reason.
#[derive(Debug)]
pub struct FlashArray {
    geometry: SsdGeometry,
    /// Page payloads, keyed by dense page index.
    data: HashMap<u64, Vec<u8>>,
    /// Page states, keyed by dense page index; absent = erased (fresh).
    states: HashMap<u64, PageState>,
    /// Erase counts per (dense) block index.
    erase_counts: HashMap<u64, u64>,
    /// Injected read faults.
    faults: FaultPlan,
    /// Read-retry ladder consulted when a read fails ECC transiently.
    retry: ReadRetryPolicy,
    /// Blocks (dense block index) whose pages failed permanently with a
    /// remap source, awaiting retirement by the recovery pipeline.
    /// A `BTreeSet` under a mutex: reads run on `&self` from concurrent
    /// shard workers, and the ordered set keeps the drain order
    /// deterministic regardless of which worker recorded the failure.
    pending_retire: Mutex<BTreeSet<u64>>,
    /// Statistics.
    reads: AtomicU64,
    programs: u64,
    erases: u64,
    /// Telemetry hooks for events the operation counters do not cover.
    metrics: FlashMetrics,
}

impl Clone for FlashArray {
    fn clone(&self) -> Self {
        FlashArray {
            geometry: self.geometry,
            data: self.data.clone(),
            states: self.states.clone(),
            erase_counts: self.erase_counts.clone(),
            faults: self.faults.clone(),
            retry: self.retry.clone(),
            pending_retire: Mutex::new(
                self.pending_retire
                    .lock()
                    .expect("pending-retire lock poisoned")
                    .clone(),
            ),
            reads: AtomicU64::new(self.reads.load(Ordering::Relaxed)),
            programs: self.programs,
            erases: self.erases,
            metrics: self.metrics.clone(),
        }
    }
}

impl FlashArray {
    /// Creates an empty (fully erased) array for the geometry.
    pub fn new(geometry: SsdGeometry) -> Self {
        FlashArray {
            geometry,
            data: HashMap::new(),
            states: HashMap::new(),
            erase_counts: HashMap::new(),
            faults: FaultPlan::none(),
            retry: ReadRetryPolicy::paper_default(),
            pending_retire: Mutex::new(BTreeSet::new()),
            reads: AtomicU64::new(0),
            programs: 0,
            erases: 0,
            metrics: FlashMetrics::new(),
        }
    }

    /// The array's geometry.
    pub fn geometry(&self) -> &SsdGeometry {
        &self.geometry
    }

    /// Programs a page with `data` (padded with zeros to the page size).
    ///
    /// # Errors
    ///
    /// * [`FlashError::AddressOutOfRange`] for an invalid address.
    /// * [`FlashError::ProgramWithoutErase`] if the page is already
    ///   programmed.
    /// * [`FlashError::SizeMismatch`] if `data` exceeds the page size.
    pub fn program(&mut self, addr: PageAddr, data: &[u8]) -> Result<()> {
        self.geometry.check(addr)?;
        if data.len() > self.geometry.page_bytes {
            return Err(FlashError::SizeMismatch {
                expected: self.geometry.page_bytes,
                found: data.len(),
            });
        }
        let idx = self.geometry.page_index(addr);
        if self.states.get(&idx) == Some(&PageState::Programmed) {
            return Err(FlashError::ProgramWithoutErase(addr));
        }
        let mut page = data.to_vec();
        page.resize(self.geometry.page_bytes, 0);
        self.data.insert(idx, page);
        self.states.insert(idx, PageState::Programmed);
        self.programs += 1;
        Ok(())
    }

    /// Installs a fault plan; subsequent reads consult its layers.
    /// Transient faults are recovered by the read-retry ladder; pages
    /// that fail permanently return [`FlashError::UncorrectableEcc`].
    pub fn inject_faults(&mut self, faults: FaultPlan) {
        self.faults = faults;
    }

    /// The installed fault plan.
    pub fn faults(&self) -> &FaultPlan {
        &self.faults
    }

    /// Sets the read-retry ladder (how many attempts a read gets).
    pub fn set_read_retry(&mut self, retry: ReadRetryPolicy) {
        self.retry = retry;
    }

    /// The active read-retry ladder.
    pub fn read_retry(&self) -> &ReadRetryPolicy {
        &self.retry
    }

    /// Reads a programmed page. Takes `&self` so concurrent shard workers
    /// can read different channels of one array simultaneously.
    ///
    /// Equivalent to [`FlashArray::read_with_stats`] with the fault
    /// statistics discarded: retries still run (and still count in the
    /// [`FlashMetrics`] hooks), the caller just doesn't attribute them.
    ///
    /// # Errors
    ///
    /// * [`FlashError::AddressOutOfRange`] for an invalid address.
    /// * [`FlashError::ReadUnwritten`] if the page was never programmed.
    /// * [`FlashError::UncorrectableEcc`] if the fault plan fails the
    ///   page beyond the retry budget.
    pub fn read(&self, addr: PageAddr) -> Result<&[u8]> {
        let mut stats = ReadFaultStats::new();
        self.read_with_stats(addr, &mut stats)
    }

    /// [`FlashArray::read`] with per-read fault attribution: retry
    /// rounds, recoveries and permanent failures are recorded into
    /// `stats` (functional counts — identical with `obs` on and off).
    ///
    /// The layered fault pipeline, per attempt `a` (0-based):
    ///
    /// 1. [`FaultPlan::outcome`] decides `Ok` / `Transient` / `Permanent`
    ///    deterministically from `(plan, page, a, block wear)`.
    /// 2. `Transient` burns one retry from the [`ReadRetryPolicy`]
    ///    budget; the caller charges the escalating ladder cost via
    ///    [`crate::stream::retry_stall`].
    /// 3. `Permanent` aborts the ladder immediately (the controller
    ///    recognizes a hard-failure signature — retrying cannot help).
    ///    If the page is *not* in an outage domain its block is queued
    ///    for retirement: the recovery pipeline will remap the data and
    ///    retire the block. Outage-domain pages have no remap source
    ///    and count as lost.
    ///
    /// Failed attempts never advance the page-read operation counter —
    /// only a successful read moves data over the bus.
    ///
    /// # Errors
    ///
    /// Same conditions as [`FlashArray::read`].
    pub fn read_with_stats(&self, addr: PageAddr, stats: &mut ReadFaultStats) -> Result<&[u8]> {
        self.geometry.check(addr)?;
        let mut attempt = 0u32;
        if !self.faults.is_empty() {
            let wear = self.erase_count(addr);
            let max_attempts = self.retry.max_attempts.max(1);
            loop {
                match self.faults.outcome(&self.geometry, addr, attempt, wear) {
                    FaultOutcome::Ok => break,
                    FaultOutcome::Transient => {
                        self.metrics.on_ecc_failure();
                        if attempt + 1 >= max_attempts {
                            // Retry budget exhausted. The fault is still
                            // transient, so the block is NOT retired — a
                            // later read (or a bigger budget) may recover.
                            return Err(FlashError::UncorrectableEcc(addr));
                        }
                        stats.on_retry(attempt as usize);
                        self.metrics.on_read_retries(1);
                        attempt += 1;
                    }
                    FaultOutcome::Permanent => {
                        self.metrics.on_ecc_failure();
                        if self.faults.in_outage_domain(addr) {
                            stats.lost += 1;
                        } else {
                            stats.remappable += 1;
                            let block = self.geometry.page_index(addr)
                                / self.geometry.pages_per_block as u64;
                            self.pending_retire
                                .lock()
                                .expect("pending-retire lock poisoned")
                                .insert(block);
                        }
                        return Err(FlashError::UncorrectableEcc(addr));
                    }
                }
            }
        }
        let idx = self.geometry.page_index(addr);
        if self.states.get(&idx) != Some(&PageState::Programmed) {
            return Err(FlashError::ReadUnwritten(addr));
        }
        if attempt > 0 {
            stats.recovered += 1;
            self.metrics.on_read_recovered();
        }
        self.reads.fetch_add(1, Ordering::Relaxed);
        Ok(self.data.get(&idx).expect("programmed page has data"))
    }

    /// The last-gasp soft-decode path: recovers a permanently-failing
    /// page's bytes for remapping. Real controllers run a much slower
    /// soft-decision LDPC decode that usually succeeds exactly once;
    /// functionally the bytes are the array's stored payload. Returns
    /// `None` when there is no remap source: the page sits in an outage
    /// domain (the die cannot be addressed at all) or was never
    /// programmed.
    pub fn recover_page_bytes(&self, addr: PageAddr) -> Option<Vec<u8>> {
        if self.geometry.check(addr).is_err() || self.faults.in_outage_domain(addr) {
            return None;
        }
        let idx = self.geometry.page_index(addr);
        if self.states.get(&idx) != Some(&PageState::Programmed) {
            return None;
        }
        self.data.get(&idx).cloned()
    }

    /// Drains the queue of blocks awaiting retirement, in ascending
    /// dense-block-index order (deterministic regardless of which scan
    /// worker observed the failure first).
    pub fn take_pending_retirements(&mut self) -> Vec<u64> {
        let mut queue = self
            .pending_retire
            .lock()
            .expect("pending-retire lock poisoned");
        let drained: Vec<u64> = queue.iter().copied().collect();
        queue.clear();
        drained
    }

    /// Number of blocks currently awaiting retirement.
    pub fn pending_retirements(&self) -> usize {
        self.pending_retire
            .lock()
            .expect("pending-retire lock poisoned")
            .len()
    }

    /// True if the page is currently programmed.
    pub fn is_programmed(&self, addr: PageAddr) -> bool {
        self.geometry
            .check(addr)
            .ok()
            .map(|()| {
                self.states.get(&self.geometry.page_index(addr)) == Some(&PageState::Programmed)
            })
            .unwrap_or(false)
    }

    /// Erases a whole block, freeing all of its pages.
    ///
    /// # Errors
    ///
    /// Returns [`FlashError::AddressOutOfRange`] for an invalid address
    /// (the `page` field of `block_addr` is ignored).
    pub fn erase_block(&mut self, block_addr: PageAddr) -> Result<()> {
        let base = PageAddr {
            page: 0,
            ..block_addr
        };
        self.geometry.check(base)?;
        for page in 0..self.geometry.pages_per_block {
            let idx = self.geometry.page_index(PageAddr { page, ..base });
            self.data.remove(&idx);
            self.states.remove(&idx);
        }
        let block_idx = self.geometry.page_index(base) / self.geometry.pages_per_block as u64;
        *self.erase_counts.entry(block_idx).or_insert(0) += 1;
        self.erases += 1;
        Ok(())
    }

    /// Erase count of the block containing `addr`.
    pub fn erase_count(&self, addr: PageAddr) -> u64 {
        let base = PageAddr { page: 0, ..addr };
        let block_idx = self.geometry.page_index(base) / self.geometry.pages_per_block as u64;
        self.erase_counts.get(&block_idx).copied().unwrap_or(0)
    }

    /// (reads, programs, erases) issued so far.
    pub fn op_counts(&self) -> (u64, u64, u64) {
        (
            self.reads.load(Ordering::Relaxed),
            self.programs,
            self.erases,
        )
    }

    /// The array's telemetry hooks (ECC failures, GC, bus waits).
    pub fn metrics(&self) -> &FlashMetrics {
        &self.metrics
    }

    /// A snapshot of every flash event count: the operation counters
    /// plus the [`FlashMetrics`] hook totals.
    pub fn event_counts(&self) -> FlashEventCounts {
        let (page_reads, programs, erases) = self.op_counts();
        FlashEventCounts {
            page_reads,
            programs,
            erases,
            ecc_failures: self.metrics.ecc_failures(),
            gc_runs: self.metrics.gc_runs(),
            gc_blocks_reclaimed: self.metrics.gc_blocks_reclaimed(),
            bus_wait_ns: self.metrics.bus_wait_ns(),
            bus_transfers: self.metrics.bus_transfers(),
            read_retries: self.metrics.read_retries(),
            read_retry_ns: self.metrics.read_retry_ns(),
            reads_recovered: self.metrics.reads_recovered(),
            remapped_pages: self.metrics.remapped_pages(),
            retired_blocks: self.metrics.retired_blocks(),
            lost_pages: self.metrics.lost_pages(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SsdConfig;

    fn array() -> FlashArray {
        FlashArray::new(SsdConfig::small().geometry)
    }

    #[test]
    fn program_then_read_roundtrips() {
        let mut a = array();
        let addr = PageAddr::zero();
        a.program(addr, b"hello flash").unwrap();
        let page = a.read(addr).unwrap();
        assert_eq!(&page[..11], b"hello flash");
        assert_eq!(page.len(), a.geometry().page_bytes); // zero-padded
    }

    #[test]
    fn read_unwritten_fails() {
        let a = array();
        assert!(matches!(
            a.read(PageAddr::zero()),
            Err(FlashError::ReadUnwritten(_))
        ));
    }

    #[test]
    fn double_program_fails_until_erase() {
        let mut a = array();
        let addr = PageAddr::zero();
        a.program(addr, b"one").unwrap();
        assert!(matches!(
            a.program(addr, b"two"),
            Err(FlashError::ProgramWithoutErase(_))
        ));
        a.erase_block(addr).unwrap();
        a.program(addr, b"two").unwrap();
        assert_eq!(&a.read(addr).unwrap()[..3], b"two");
    }

    #[test]
    fn erase_clears_whole_block() {
        let mut a = array();
        let g = *a.geometry();
        for page in 0..g.pages_per_block {
            a.program(
                PageAddr {
                    page,
                    ..PageAddr::zero()
                },
                &[1],
            )
            .unwrap();
        }
        a.erase_block(PageAddr::zero()).unwrap();
        for page in 0..g.pages_per_block {
            assert!(!a.is_programmed(PageAddr {
                page,
                ..PageAddr::zero()
            }));
        }
    }

    #[test]
    fn erase_counts_accumulate() {
        let mut a = array();
        assert_eq!(a.erase_count(PageAddr::zero()), 0);
        a.erase_block(PageAddr::zero()).unwrap();
        a.erase_block(PageAddr::zero()).unwrap();
        assert_eq!(a.erase_count(PageAddr::zero()), 2);
        // Another block is unaffected.
        let other = PageAddr {
            block: 1,
            ..PageAddr::zero()
        };
        assert_eq!(a.erase_count(other), 0);
    }

    #[test]
    fn oversized_program_fails() {
        let mut a = array();
        let too_big = vec![0u8; a.geometry().page_bytes + 1];
        assert!(matches!(
            a.program(PageAddr::zero(), &too_big),
            Err(FlashError::SizeMismatch { .. })
        ));
    }

    #[test]
    fn out_of_range_is_rejected_everywhere() {
        let mut a = array();
        let bad = PageAddr {
            channel: 99,
            ..PageAddr::zero()
        };
        assert!(a.program(bad, &[0]).is_err());
        assert!(a.read(bad).is_err());
        assert!(a.erase_block(bad).is_err());
        assert!(!a.is_programmed(bad));
    }

    #[test]
    fn op_counts_track_operations() {
        let mut a = array();
        a.program(PageAddr::zero(), &[9]).unwrap();
        let _ = a.read(PageAddr::zero()).unwrap();
        a.erase_block(PageAddr::zero()).unwrap();
        assert_eq!(a.op_counts(), (1, 1, 1));
    }

    /// A fault plan where every page is transient-faulty and fails
    /// exactly one attempt: deterministic retry behaviour everywhere.
    fn all_transient_once() -> FaultPlan {
        FaultPlan::none()
            .transient(1.0, 5)
            .transient_max_failures(1)
    }

    #[test]
    fn transient_fault_recovers_via_retry() {
        let mut a = array();
        a.program(PageAddr::zero(), b"wobbly bits").unwrap();
        a.inject_faults(all_transient_once());
        let mut stats = ReadFaultStats::new();
        let page = a.read_with_stats(PageAddr::zero(), &mut stats).unwrap();
        assert_eq!(&page[..11], b"wobbly bits");
        assert_eq!(stats.retries_by_round, vec![1]);
        assert_eq!(stats.recovered, 1);
        assert_eq!((stats.remappable, stats.lost), (0, 0));
        // Failed attempts do not advance the page-read counter.
        assert_eq!(a.op_counts().0, 1);
        #[cfg(feature = "obs")]
        {
            assert_eq!(a.metrics().read_retries(), 1);
            assert_eq!(a.metrics().reads_recovered(), 1);
            assert_eq!(a.metrics().ecc_failures(), 1);
        }
    }

    #[test]
    fn transient_fault_exhausts_budget_without_retirement() {
        let mut a = array();
        a.program(PageAddr::zero(), &[1]).unwrap();
        a.inject_faults(all_transient_once());
        a.set_read_retry(ReadRetryPolicy::disabled());
        let mut stats = ReadFaultStats::new();
        assert!(matches!(
            a.read_with_stats(PageAddr::zero(), &mut stats),
            Err(FlashError::UncorrectableEcc(_))
        ));
        // Transient exhaustion is not a permanent failure: nothing
        // queues for retirement and nothing counts as remappable.
        assert_eq!(stats.total_retries(), 0);
        assert_eq!((stats.remappable, stats.lost), (0, 0));
        assert_eq!(a.pending_retirements(), 0);
        // Restoring the budget recovers the read.
        a.set_read_retry(ReadRetryPolicy::paper_default());
        assert!(a.read(PageAddr::zero()).is_ok());
    }

    #[test]
    fn permanent_fault_queues_block_for_retirement() {
        let mut a = array();
        let g = *a.geometry();
        a.program(PageAddr::zero(), b"doomed").unwrap();
        a.inject_faults(FaultPlan::none().fail_page(&g, PageAddr::zero()));
        let mut stats = ReadFaultStats::new();
        assert!(a.read_with_stats(PageAddr::zero(), &mut stats).is_err());
        assert_eq!(stats.remappable, 1);
        assert_eq!(a.pending_retirements(), 1);
        // The last-gasp path still recovers the bytes for remapping.
        let bytes = a.recover_page_bytes(PageAddr::zero()).unwrap();
        assert_eq!(&bytes[..6], b"doomed");
        // Draining is deterministic and idempotent.
        assert_eq!(a.take_pending_retirements(), vec![0]);
        assert!(a.take_pending_retirements().is_empty());
    }

    #[test]
    fn outage_fault_is_lost_not_remappable() {
        let mut a = array();
        a.program(PageAddr::zero(), &[7]).unwrap();
        a.inject_faults(FaultPlan::none().dead_channel(0));
        let mut stats = ReadFaultStats::new();
        assert!(matches!(
            a.read_with_stats(PageAddr::zero(), &mut stats),
            Err(FlashError::UncorrectableEcc(_))
        ));
        assert_eq!((stats.remappable, stats.lost), (0, 1));
        assert_eq!(a.pending_retirements(), 0);
        assert!(a.recover_page_bytes(PageAddr::zero()).is_none());
    }

    #[test]
    fn wear_threshold_fails_cycled_blocks() {
        let mut a = array();
        a.inject_faults(FaultPlan::none().wear_threshold(2));
        a.program(PageAddr::zero(), &[1]).unwrap();
        assert!(a.read(PageAddr::zero()).is_ok());
        a.erase_block(PageAddr::zero()).unwrap();
        a.erase_block(PageAddr::zero()).unwrap();
        a.program(PageAddr::zero(), &[2]).unwrap();
        let mut stats = ReadFaultStats::new();
        assert!(a.read_with_stats(PageAddr::zero(), &mut stats).is_err());
        assert_eq!(stats.remappable, 1);
        assert_eq!(a.pending_retirements(), 1);
        // A fresh block is unaffected by the wear layer.
        let fresh = PageAddr {
            block: 3,
            ..PageAddr::zero()
        };
        a.program(fresh, &[3]).unwrap();
        assert!(a.read(fresh).is_ok());
    }
}
