//! Functional flash array: stores real bytes with NAND semantics.
//!
//! The functional layer of the simulator keeps actual page contents so that
//! end-to-end queries return real results. NAND semantics are enforced:
//! pages must be erased (at block granularity) before being programmed, and
//! each block tracks an erase count for wear-leveling statistics.

use crate::fault::FaultPlan;
use crate::geometry::{PageAddr, SsdGeometry};
use crate::obs::{FlashEventCounts, FlashMetrics};
use crate::{FlashError, Result};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// State of a single page. Pages start (and return to, after erase) the
/// `Erased` state implicitly by being absent from the state map.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PageState {
    Programmed,
}

/// A functional flash array.
///
/// Pages are stored sparsely, so a terabyte-scale geometry costs nothing
/// until data is written.
///
/// Reads take `&self`: independent flash channels serve page reads
/// concurrently, so the parallel query scan shares one array across its
/// shard workers. The read counter is atomic for exactly that reason.
#[derive(Debug)]
pub struct FlashArray {
    geometry: SsdGeometry,
    /// Page payloads, keyed by dense page index.
    data: HashMap<u64, Vec<u8>>,
    /// Page states, keyed by dense page index; absent = erased (fresh).
    states: HashMap<u64, PageState>,
    /// Erase counts per (dense) block index.
    erase_counts: HashMap<u64, u64>,
    /// Injected read faults.
    faults: FaultPlan,
    /// Statistics.
    reads: AtomicU64,
    programs: u64,
    erases: u64,
    /// Telemetry hooks for events the operation counters do not cover.
    metrics: FlashMetrics,
}

impl Clone for FlashArray {
    fn clone(&self) -> Self {
        FlashArray {
            geometry: self.geometry,
            data: self.data.clone(),
            states: self.states.clone(),
            erase_counts: self.erase_counts.clone(),
            faults: self.faults.clone(),
            reads: AtomicU64::new(self.reads.load(Ordering::Relaxed)),
            programs: self.programs,
            erases: self.erases,
            metrics: self.metrics.clone(),
        }
    }
}

impl FlashArray {
    /// Creates an empty (fully erased) array for the geometry.
    pub fn new(geometry: SsdGeometry) -> Self {
        FlashArray {
            geometry,
            data: HashMap::new(),
            states: HashMap::new(),
            erase_counts: HashMap::new(),
            faults: FaultPlan::none(),
            reads: AtomicU64::new(0),
            programs: 0,
            erases: 0,
            metrics: FlashMetrics::new(),
        }
    }

    /// The array's geometry.
    pub fn geometry(&self) -> &SsdGeometry {
        &self.geometry
    }

    /// Programs a page with `data` (padded with zeros to the page size).
    ///
    /// # Errors
    ///
    /// * [`FlashError::AddressOutOfRange`] for an invalid address.
    /// * [`FlashError::ProgramWithoutErase`] if the page is already
    ///   programmed.
    /// * [`FlashError::SizeMismatch`] if `data` exceeds the page size.
    pub fn program(&mut self, addr: PageAddr, data: &[u8]) -> Result<()> {
        self.geometry.check(addr)?;
        if data.len() > self.geometry.page_bytes {
            return Err(FlashError::SizeMismatch {
                expected: self.geometry.page_bytes,
                found: data.len(),
            });
        }
        let idx = self.geometry.page_index(addr);
        if self.states.get(&idx) == Some(&PageState::Programmed) {
            return Err(FlashError::ProgramWithoutErase(addr));
        }
        let mut page = data.to_vec();
        page.resize(self.geometry.page_bytes, 0);
        self.data.insert(idx, page);
        self.states.insert(idx, PageState::Programmed);
        self.programs += 1;
        Ok(())
    }

    /// Installs a fault plan; subsequent reads of failing pages return
    /// [`FlashError::UncorrectableEcc`].
    pub fn inject_faults(&mut self, faults: FaultPlan) {
        self.faults = faults;
    }

    /// Reads a programmed page. Takes `&self` so concurrent shard workers
    /// can read different channels of one array simultaneously.
    ///
    /// # Errors
    ///
    /// * [`FlashError::AddressOutOfRange`] for an invalid address.
    /// * [`FlashError::ReadUnwritten`] if the page was never programmed.
    /// * [`FlashError::UncorrectableEcc`] if a fault plan marks the page.
    pub fn read(&self, addr: PageAddr) -> Result<&[u8]> {
        self.geometry.check(addr)?;
        if self.faults.fails(&self.geometry, addr) {
            self.metrics.on_ecc_failure();
            return Err(FlashError::UncorrectableEcc(addr));
        }
        let idx = self.geometry.page_index(addr);
        if self.states.get(&idx) != Some(&PageState::Programmed) {
            return Err(FlashError::ReadUnwritten(addr));
        }
        self.reads.fetch_add(1, Ordering::Relaxed);
        Ok(self.data.get(&idx).expect("programmed page has data"))
    }

    /// True if the page is currently programmed.
    pub fn is_programmed(&self, addr: PageAddr) -> bool {
        self.geometry
            .check(addr)
            .ok()
            .map(|()| {
                self.states.get(&self.geometry.page_index(addr)) == Some(&PageState::Programmed)
            })
            .unwrap_or(false)
    }

    /// Erases a whole block, freeing all of its pages.
    ///
    /// # Errors
    ///
    /// Returns [`FlashError::AddressOutOfRange`] for an invalid address
    /// (the `page` field of `block_addr` is ignored).
    pub fn erase_block(&mut self, block_addr: PageAddr) -> Result<()> {
        let base = PageAddr {
            page: 0,
            ..block_addr
        };
        self.geometry.check(base)?;
        for page in 0..self.geometry.pages_per_block {
            let idx = self.geometry.page_index(PageAddr { page, ..base });
            self.data.remove(&idx);
            self.states.remove(&idx);
        }
        let block_idx = self.geometry.page_index(base) / self.geometry.pages_per_block as u64;
        *self.erase_counts.entry(block_idx).or_insert(0) += 1;
        self.erases += 1;
        Ok(())
    }

    /// Erase count of the block containing `addr`.
    pub fn erase_count(&self, addr: PageAddr) -> u64 {
        let base = PageAddr { page: 0, ..addr };
        let block_idx = self.geometry.page_index(base) / self.geometry.pages_per_block as u64;
        self.erase_counts.get(&block_idx).copied().unwrap_or(0)
    }

    /// (reads, programs, erases) issued so far.
    pub fn op_counts(&self) -> (u64, u64, u64) {
        (
            self.reads.load(Ordering::Relaxed),
            self.programs,
            self.erases,
        )
    }

    /// The array's telemetry hooks (ECC failures, GC, bus waits).
    pub fn metrics(&self) -> &FlashMetrics {
        &self.metrics
    }

    /// A snapshot of every flash event count: the operation counters
    /// plus the [`FlashMetrics`] hook totals.
    pub fn event_counts(&self) -> FlashEventCounts {
        let (page_reads, programs, erases) = self.op_counts();
        FlashEventCounts {
            page_reads,
            programs,
            erases,
            ecc_failures: self.metrics.ecc_failures(),
            gc_runs: self.metrics.gc_runs(),
            gc_blocks_reclaimed: self.metrics.gc_blocks_reclaimed(),
            bus_wait_ns: self.metrics.bus_wait_ns(),
            bus_transfers: self.metrics.bus_transfers(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SsdConfig;

    fn array() -> FlashArray {
        FlashArray::new(SsdConfig::small().geometry)
    }

    #[test]
    fn program_then_read_roundtrips() {
        let mut a = array();
        let addr = PageAddr::zero();
        a.program(addr, b"hello flash").unwrap();
        let page = a.read(addr).unwrap();
        assert_eq!(&page[..11], b"hello flash");
        assert_eq!(page.len(), a.geometry().page_bytes); // zero-padded
    }

    #[test]
    fn read_unwritten_fails() {
        let a = array();
        assert!(matches!(
            a.read(PageAddr::zero()),
            Err(FlashError::ReadUnwritten(_))
        ));
    }

    #[test]
    fn double_program_fails_until_erase() {
        let mut a = array();
        let addr = PageAddr::zero();
        a.program(addr, b"one").unwrap();
        assert!(matches!(
            a.program(addr, b"two"),
            Err(FlashError::ProgramWithoutErase(_))
        ));
        a.erase_block(addr).unwrap();
        a.program(addr, b"two").unwrap();
        assert_eq!(&a.read(addr).unwrap()[..3], b"two");
    }

    #[test]
    fn erase_clears_whole_block() {
        let mut a = array();
        let g = *a.geometry();
        for page in 0..g.pages_per_block {
            a.program(
                PageAddr {
                    page,
                    ..PageAddr::zero()
                },
                &[1],
            )
            .unwrap();
        }
        a.erase_block(PageAddr::zero()).unwrap();
        for page in 0..g.pages_per_block {
            assert!(!a.is_programmed(PageAddr {
                page,
                ..PageAddr::zero()
            }));
        }
    }

    #[test]
    fn erase_counts_accumulate() {
        let mut a = array();
        assert_eq!(a.erase_count(PageAddr::zero()), 0);
        a.erase_block(PageAddr::zero()).unwrap();
        a.erase_block(PageAddr::zero()).unwrap();
        assert_eq!(a.erase_count(PageAddr::zero()), 2);
        // Another block is unaffected.
        let other = PageAddr {
            block: 1,
            ..PageAddr::zero()
        };
        assert_eq!(a.erase_count(other), 0);
    }

    #[test]
    fn oversized_program_fails() {
        let mut a = array();
        let too_big = vec![0u8; a.geometry().page_bytes + 1];
        assert!(matches!(
            a.program(PageAddr::zero(), &too_big),
            Err(FlashError::SizeMismatch { .. })
        ));
    }

    #[test]
    fn out_of_range_is_rejected_everywhere() {
        let mut a = array();
        let bad = PageAddr {
            channel: 99,
            ..PageAddr::zero()
        };
        assert!(a.program(bad, &[0]).is_err());
        assert!(a.read(bad).is_err());
        assert!(a.erase_block(bad).is_err());
        assert!(!a.is_programmed(bad));
    }

    #[test]
    fn op_counts_track_operations() {
        let mut a = array();
        a.program(PageAddr::zero(), &[9]).unwrap();
        let _ = a.read(PageAddr::zero()).unwrap();
        a.erase_block(PageAddr::zero()).unwrap();
        assert_eq!(a.op_counts(), (1, 1, 1));
    }
}
