//! Functional flash array: stores real bytes with NAND semantics.
//!
//! The functional layer of the simulator keeps actual page contents so that
//! end-to-end queries return real results. NAND semantics are enforced:
//! pages must be erased (at block granularity) before being programmed, and
//! each block tracks an erase count for wear-leveling statistics.
//!
//! Page *payloads* live behind the pluggable [`PageStore`] trait (heap or
//! a persistent mmap image — see [`crate::store`] and [`crate::image`]);
//! the array owns the NAND *semantics*: the programmed-page set, the
//! erase-before-program rule, erase counts, fault injection and the
//! read-retry ladder. [`FlashArray::state_snapshot`] captures exactly that
//! semantic state so a persistent backend can round-trip it through the
//! image manifest.

use crate::fault::{FaultOutcome, FaultPlan, ReadFaultStats};
use crate::geometry::{PageAddr, SsdGeometry};
use crate::obs::{FlashEventCounts, FlashMetrics};
use crate::store::{HeapStore, PageStore};
use crate::timing::ReadRetryPolicy;
use crate::{FlashError, Result};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Flash operation counters: how many page reads, page programs and
/// block erases the array has served.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlashOpCounts {
    /// Successful page reads (failed retry attempts do not count — only
    /// a successful read moves data over the bus).
    pub reads: u64,
    /// Page programs.
    pub programs: u64,
    /// Block erases.
    pub erases: u64,
}

/// The array's semantic state, serializable into an image manifest and
/// restorable on reopen: everything [`FlashArray`] tracks *besides* the
/// page payloads (which the persistent backend keeps in the page region)
/// and the injected fault/retry configuration (which is runtime config,
/// re-injected by the caller).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlashStateSnapshot {
    /// Programmed pages as sorted `(first_index, run_length)` runs —
    /// feature databases program dense page ranges, so runs compress the
    /// set by orders of magnitude versus one entry per page.
    pub programmed_runs: Vec<(u64, u64)>,
    /// Non-zero per-block erase counts as sorted `(block_index, count)`.
    pub erase_counts: Vec<(u64, u64)>,
    /// Blocks queued for retirement, ascending.
    pub pending_retire: Vec<u64>,
    /// Operation counters at snapshot time.
    pub op_counts: FlashOpCounts,
}

fn runs_from_set(set: &HashSet<u64>) -> Vec<(u64, u64)> {
    let mut sorted: Vec<u64> = set.iter().copied().collect();
    sorted.sort_unstable();
    let mut runs: Vec<(u64, u64)> = Vec::new();
    for idx in sorted {
        match runs.last_mut() {
            Some((start, len)) if *start + *len == idx => *len += 1,
            _ => runs.push((idx, 1)),
        }
    }
    runs
}

fn set_from_runs(runs: &[(u64, u64)]) -> HashSet<u64> {
    let mut set = HashSet::new();
    for &(start, len) in runs {
        for idx in start..start + len {
            set.insert(idx);
        }
    }
    set
}

/// A functional flash array.
///
/// Pages are stored sparsely, so a terabyte-scale geometry costs nothing
/// until data is written (the mmap backend's page region is a sparse
/// file hole for the same reason).
///
/// Reads take `&self`: independent flash channels serve page reads
/// concurrently, so the parallel query scan shares one array across its
/// shard workers. The read counter is atomic for exactly that reason.
#[derive(Debug)]
pub struct FlashArray {
    geometry: SsdGeometry,
    /// Page payloads, behind the pluggable backend.
    store: Box<dyn PageStore>,
    /// Programmed pages by dense page index; absent = erased (fresh).
    programmed: HashSet<u64>,
    /// Erase counts per (dense) block index.
    erase_counts: HashMap<u64, u64>,
    /// Injected read faults.
    faults: FaultPlan,
    /// Read-retry ladder consulted when a read fails ECC transiently.
    retry: ReadRetryPolicy,
    /// Blocks (dense block index) whose pages failed permanently with a
    /// remap source, awaiting retirement by the recovery pipeline.
    /// A `BTreeSet` under a mutex: reads run on `&self` from concurrent
    /// shard workers, and the ordered set keeps the drain order
    /// deterministic regardless of which worker recorded the failure.
    pending_retire: Mutex<BTreeSet<u64>>,
    /// Statistics.
    reads: AtomicU64,
    programs: u64,
    erases: u64,
    /// Telemetry hooks for events the operation counters do not cover.
    metrics: FlashMetrics,
}

impl Clone for FlashArray {
    /// Deep-copies the array into a fresh heap backend (cloning is a
    /// test/tooling convenience; a persistent image has exactly one
    /// owner, so its clone is a volatile snapshot of the same bytes).
    fn clone(&self) -> Self {
        let mut store = HeapStore::new(self.geometry.page_bytes);
        for &idx in &self.programmed {
            store.program(idx, self.store.page(idx));
        }
        FlashArray {
            geometry: self.geometry,
            store: Box::new(store),
            programmed: self.programmed.clone(),
            erase_counts: self.erase_counts.clone(),
            faults: self.faults.clone(),
            retry: self.retry.clone(),
            pending_retire: Mutex::new(
                self.pending_retire
                    .lock()
                    .expect("pending-retire lock poisoned")
                    .clone(),
            ),
            reads: AtomicU64::new(self.reads.load(Ordering::Relaxed)),
            programs: self.programs,
            erases: self.erases,
            metrics: self.metrics.clone(),
        }
    }
}

impl FlashArray {
    /// Creates an empty (fully erased) array on the heap backend.
    pub fn new(geometry: SsdGeometry) -> Self {
        Self::with_store(geometry, Box::new(HeapStore::new(geometry.page_bytes)))
    }

    /// Creates an empty array over an explicit page-payload backend.
    pub fn with_store(geometry: SsdGeometry, store: Box<dyn PageStore>) -> Self {
        FlashArray {
            geometry,
            store,
            programmed: HashSet::new(),
            erase_counts: HashMap::new(),
            faults: FaultPlan::none(),
            retry: ReadRetryPolicy::paper_default(),
            pending_retire: Mutex::new(BTreeSet::new()),
            reads: AtomicU64::new(0),
            programs: 0,
            erases: 0,
            metrics: FlashMetrics::new(),
        }
    }

    /// The array's geometry.
    pub fn geometry(&self) -> &SsdGeometry {
        &self.geometry
    }

    /// Short name of the page-payload backend ("heap" / "mmap").
    pub fn backend(&self) -> &'static str {
        self.store.backend()
    }

    /// Whether committed state survives process exit.
    pub fn is_persistent(&self) -> bool {
        self.store.is_persistent()
    }

    /// Forces buffered page payloads to durable storage (no-op on the
    /// heap backend).
    ///
    /// # Errors
    ///
    /// Returns [`FlashError::Image`] if the backing file cannot sync.
    pub fn flush_store(&mut self) -> Result<()> {
        self.store.flush()
    }

    /// Commits `manifest` to the persistent backend with the crash-safe
    /// ordering documented in [`crate::image`].
    ///
    /// # Errors
    ///
    /// Returns [`FlashError::Image`] if the backend is volatile or the
    /// commit fails (the previous commit stays authoritative).
    pub fn commit(&mut self, manifest: &[u8], clean: bool) -> Result<()> {
        self.store.commit(manifest, clean)
    }

    /// Captures the semantic state (programmed set, erase counts,
    /// retirement queue, operation counters) for an image manifest.
    pub fn state_snapshot(&self) -> FlashStateSnapshot {
        let mut erase_counts: Vec<(u64, u64)> = self
            .erase_counts
            .iter()
            .map(|(&b, &c)| (b, c))
            .filter(|&(_, c)| c > 0)
            .collect();
        erase_counts.sort_unstable();
        FlashStateSnapshot {
            programmed_runs: runs_from_set(&self.programmed),
            erase_counts,
            pending_retire: self
                .pending_retire
                .lock()
                .expect("pending-retire lock poisoned")
                .iter()
                .copied()
                .collect(),
            op_counts: self.op_counts(),
        }
    }

    /// Restores semantic state from a snapshot (the page payloads are
    /// the backend's concern — for a reopened image they are already in
    /// the page region). Fault plans and retry policies are runtime
    /// configuration and are *not* part of the snapshot; re-inject them
    /// after restoring.
    pub fn restore_state(&mut self, snap: &FlashStateSnapshot) {
        self.programmed = set_from_runs(&snap.programmed_runs);
        self.erase_counts = snap.erase_counts.iter().copied().collect();
        *self
            .pending_retire
            .lock()
            .expect("pending-retire lock poisoned") = snap.pending_retire.iter().copied().collect();
        self.reads = AtomicU64::new(snap.op_counts.reads);
        self.programs = snap.op_counts.programs;
        self.erases = snap.op_counts.erases;
    }

    /// Programs a page with `data` (padded with zeros to the page size).
    ///
    /// # Errors
    ///
    /// * [`FlashError::AddressOutOfRange`] for an invalid address.
    /// * [`FlashError::ProgramWithoutErase`] if the page is already
    ///   programmed.
    /// * [`FlashError::SizeMismatch`] if `data` exceeds the page size.
    pub fn program(&mut self, addr: PageAddr, data: &[u8]) -> Result<()> {
        self.geometry.check(addr)?;
        if data.len() > self.geometry.page_bytes {
            return Err(FlashError::SizeMismatch {
                expected: self.geometry.page_bytes,
                found: data.len(),
            });
        }
        let idx = self.geometry.page_index(addr);
        if self.programmed.contains(&idx) {
            return Err(FlashError::ProgramWithoutErase(addr));
        }
        self.store.program(idx, data);
        self.programmed.insert(idx);
        self.programs += 1;
        Ok(())
    }

    /// Installs a fault plan; subsequent reads consult its layers.
    /// Transient faults are recovered by the read-retry ladder; pages
    /// that fail permanently return [`FlashError::UncorrectableEcc`].
    pub fn inject_faults(&mut self, faults: FaultPlan) {
        self.faults = faults;
    }

    /// The installed fault plan.
    pub fn faults(&self) -> &FaultPlan {
        &self.faults
    }

    /// Sets the read-retry ladder (how many attempts a read gets).
    pub fn set_read_retry(&mut self, retry: ReadRetryPolicy) {
        self.retry = retry;
    }

    /// The active read-retry ladder.
    pub fn read_retry(&self) -> &ReadRetryPolicy {
        &self.retry
    }

    /// Reads a programmed page. Takes `&self` so concurrent shard workers
    /// can read different channels of one array simultaneously.
    ///
    /// Equivalent to [`FlashArray::read_with_stats`] with the fault
    /// statistics discarded: retries still run (and still count in the
    /// [`FlashMetrics`] hooks), the caller just doesn't attribute them.
    ///
    /// # Errors
    ///
    /// * [`FlashError::AddressOutOfRange`] for an invalid address.
    /// * [`FlashError::ReadUnwritten`] if the page was never programmed.
    /// * [`FlashError::UncorrectableEcc`] if the fault plan fails the
    ///   page beyond the retry budget.
    pub fn read(&self, addr: PageAddr) -> Result<&[u8]> {
        let mut stats = ReadFaultStats::new();
        self.read_with_stats(addr, &mut stats)
    }

    /// [`FlashArray::read`] with per-read fault attribution: retry
    /// rounds, recoveries and permanent failures are recorded into
    /// `stats` (functional counts — identical with `obs` on and off).
    ///
    /// The layered fault pipeline, per attempt `a` (0-based):
    ///
    /// 1. [`FaultPlan::outcome`] decides `Ok` / `Transient` / `Permanent`
    ///    deterministically from `(plan, page, a, block wear)`.
    /// 2. `Transient` burns one retry from the [`ReadRetryPolicy`]
    ///    budget; the caller charges the escalating ladder cost via
    ///    [`crate::stream::retry_stall`].
    /// 3. `Permanent` aborts the ladder immediately (the controller
    ///    recognizes a hard-failure signature — retrying cannot help).
    ///    If the page is *not* in an outage domain its block is queued
    ///    for retirement: the recovery pipeline will remap the data and
    ///    retire the block. Outage-domain pages have no remap source
    ///    and count as lost.
    ///
    /// Failed attempts never advance the page-read operation counter —
    /// only a successful read moves data over the bus.
    ///
    /// The returned slice borrows straight from the backend: on the
    /// mmap backend that is the file mapping itself (zero-copy).
    ///
    /// # Errors
    ///
    /// Same conditions as [`FlashArray::read`].
    pub fn read_with_stats(&self, addr: PageAddr, stats: &mut ReadFaultStats) -> Result<&[u8]> {
        self.geometry.check(addr)?;
        let mut attempt = 0u32;
        if !self.faults.is_empty() {
            let wear = self.erase_count(addr);
            let max_attempts = self.retry.max_attempts.max(1);
            loop {
                match self.faults.outcome(&self.geometry, addr, attempt, wear) {
                    FaultOutcome::Ok => break,
                    FaultOutcome::Transient => {
                        self.metrics.on_ecc_failure();
                        if attempt + 1 >= max_attempts {
                            // Retry budget exhausted. The fault is still
                            // transient, so the block is NOT retired — a
                            // later read (or a bigger budget) may recover.
                            return Err(FlashError::UncorrectableEcc(addr));
                        }
                        stats.on_retry(attempt as usize);
                        self.metrics.on_read_retries(1);
                        attempt += 1;
                    }
                    FaultOutcome::Permanent => {
                        self.metrics.on_ecc_failure();
                        if self.faults.in_outage_domain(addr) {
                            stats.lost += 1;
                        } else {
                            stats.remappable += 1;
                            let block = self.geometry.page_index(addr)
                                / self.geometry.pages_per_block as u64;
                            self.pending_retire
                                .lock()
                                .expect("pending-retire lock poisoned")
                                .insert(block);
                        }
                        return Err(FlashError::UncorrectableEcc(addr));
                    }
                }
            }
        }
        let idx = self.geometry.page_index(addr);
        if !self.programmed.contains(&idx) {
            return Err(FlashError::ReadUnwritten(addr));
        }
        if attempt > 0 {
            stats.recovered += 1;
            self.metrics.on_read_recovered();
        }
        self.reads.fetch_add(1, Ordering::Relaxed);
        Ok(self.store.page(idx))
    }

    /// Borrows a programmed page's payload *without* advancing any
    /// operation counter and without consulting the fault plan. This is
    /// the maintenance/rebuild path (e.g. re-deriving quantized sidecars
    /// after reopening an image): it must leave the functional counters
    /// bit-identical to a run that never went through persistence.
    pub fn peek_page(&self, addr: PageAddr) -> Option<&[u8]> {
        self.geometry.check(addr).ok()?;
        let idx = self.geometry.page_index(addr);
        if !self.programmed.contains(&idx) {
            return None;
        }
        Some(self.store.page(idx))
    }

    /// The last-gasp soft-decode path: recovers a permanently-failing
    /// page's bytes for remapping. Real controllers run a much slower
    /// soft-decision LDPC decode that usually succeeds exactly once;
    /// functionally the bytes are the array's stored payload. Returns
    /// `None` when there is no remap source: the page sits in an outage
    /// domain (the die cannot be addressed at all) or was never
    /// programmed.
    pub fn recover_page_bytes(&self, addr: PageAddr) -> Option<Vec<u8>> {
        if self.geometry.check(addr).is_err() || self.faults.in_outage_domain(addr) {
            return None;
        }
        let idx = self.geometry.page_index(addr);
        if !self.programmed.contains(&idx) {
            return None;
        }
        Some(self.store.page(idx).to_vec())
    }

    /// Drains the queue of blocks awaiting retirement, in ascending
    /// dense-block-index order (deterministic regardless of which scan
    /// worker observed the failure first).
    pub fn take_pending_retirements(&mut self) -> Vec<u64> {
        let mut queue = self
            .pending_retire
            .lock()
            .expect("pending-retire lock poisoned");
        let drained: Vec<u64> = queue.iter().copied().collect();
        queue.clear();
        drained
    }

    /// Number of blocks currently awaiting retirement.
    pub fn pending_retirements(&self) -> usize {
        self.pending_retire
            .lock()
            .expect("pending-retire lock poisoned")
            .len()
    }

    /// True if the page is currently programmed.
    pub fn is_programmed(&self, addr: PageAddr) -> bool {
        self.geometry
            .check(addr)
            .ok()
            .map(|()| self.programmed.contains(&self.geometry.page_index(addr)))
            .unwrap_or(false)
    }

    /// Erases a whole block, freeing all of its pages.
    ///
    /// # Errors
    ///
    /// Returns [`FlashError::AddressOutOfRange`] for an invalid address
    /// (the `page` field of `block_addr` is ignored).
    pub fn erase_block(&mut self, block_addr: PageAddr) -> Result<()> {
        let base = PageAddr {
            page: 0,
            ..block_addr
        };
        self.geometry.check(base)?;
        let first = self.geometry.page_index(base);
        let count = self.geometry.pages_per_block as u64;
        // NAND erase: the backend pulls every cell to all-ones (the heap
        // backend just drops payloads), and the pages leave the
        // programmed set.
        self.store.erase(first, count);
        for idx in first..first + count {
            self.programmed.remove(&idx);
        }
        let block_idx = first / count;
        *self.erase_counts.entry(block_idx).or_insert(0) += 1;
        self.erases += 1;
        Ok(())
    }

    /// Erase count of the block containing `addr`.
    pub fn erase_count(&self, addr: PageAddr) -> u64 {
        let base = PageAddr { page: 0, ..addr };
        let block_idx = self.geometry.page_index(base) / self.geometry.pages_per_block as u64;
        self.erase_counts.get(&block_idx).copied().unwrap_or(0)
    }

    /// The operation counters (reads, programs, erases) so far.
    pub fn op_counts(&self) -> FlashOpCounts {
        FlashOpCounts {
            reads: self.reads.load(Ordering::Relaxed),
            programs: self.programs,
            erases: self.erases,
        }
    }

    /// The array's telemetry hooks (ECC failures, GC, bus waits).
    pub fn metrics(&self) -> &FlashMetrics {
        &self.metrics
    }

    /// A snapshot of every flash event count: the operation counters
    /// plus the [`FlashMetrics`] hook totals.
    pub fn event_counts(&self) -> FlashEventCounts {
        let ops = self.op_counts();
        FlashEventCounts {
            page_reads: ops.reads,
            programs: ops.programs,
            erases: ops.erases,
            ecc_failures: self.metrics.ecc_failures(),
            gc_runs: self.metrics.gc_runs(),
            gc_blocks_reclaimed: self.metrics.gc_blocks_reclaimed(),
            bus_wait_ns: self.metrics.bus_wait_ns(),
            bus_transfers: self.metrics.bus_transfers(),
            read_retries: self.metrics.read_retries(),
            read_retry_ns: self.metrics.read_retry_ns(),
            reads_recovered: self.metrics.reads_recovered(),
            remapped_pages: self.metrics.remapped_pages(),
            retired_blocks: self.metrics.retired_blocks(),
            lost_pages: self.metrics.lost_pages(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SsdConfig;

    fn array() -> FlashArray {
        FlashArray::new(SsdConfig::small().geometry)
    }

    fn counts(reads: u64, programs: u64, erases: u64) -> FlashOpCounts {
        FlashOpCounts {
            reads,
            programs,
            erases,
        }
    }

    #[test]
    fn program_then_read_roundtrips() {
        let mut a = array();
        let addr = PageAddr::zero();
        a.program(addr, b"hello flash").unwrap();
        let page = a.read(addr).unwrap();
        assert_eq!(&page[..11], b"hello flash");
        assert_eq!(page.len(), a.geometry().page_bytes); // zero-padded
    }

    #[test]
    fn read_unwritten_fails() {
        let a = array();
        assert!(matches!(
            a.read(PageAddr::zero()),
            Err(FlashError::ReadUnwritten(_))
        ));
    }

    #[test]
    fn double_program_fails_until_erase() {
        let mut a = array();
        let addr = PageAddr::zero();
        a.program(addr, b"one").unwrap();
        assert!(matches!(
            a.program(addr, b"two"),
            Err(FlashError::ProgramWithoutErase(_))
        ));
        a.erase_block(addr).unwrap();
        a.program(addr, b"two").unwrap();
        assert_eq!(&a.read(addr).unwrap()[..3], b"two");
    }

    #[test]
    fn erase_clears_whole_block() {
        let mut a = array();
        let g = *a.geometry();
        for page in 0..g.pages_per_block {
            a.program(
                PageAddr {
                    page,
                    ..PageAddr::zero()
                },
                &[1],
            )
            .unwrap();
        }
        a.erase_block(PageAddr::zero()).unwrap();
        for page in 0..g.pages_per_block {
            assert!(!a.is_programmed(PageAddr {
                page,
                ..PageAddr::zero()
            }));
        }
    }

    #[test]
    fn erase_counts_accumulate() {
        let mut a = array();
        assert_eq!(a.erase_count(PageAddr::zero()), 0);
        a.erase_block(PageAddr::zero()).unwrap();
        a.erase_block(PageAddr::zero()).unwrap();
        assert_eq!(a.erase_count(PageAddr::zero()), 2);
        // Another block is unaffected.
        let other = PageAddr {
            block: 1,
            ..PageAddr::zero()
        };
        assert_eq!(a.erase_count(other), 0);
    }

    #[test]
    fn oversized_program_fails() {
        let mut a = array();
        let too_big = vec![0u8; a.geometry().page_bytes + 1];
        assert!(matches!(
            a.program(PageAddr::zero(), &too_big),
            Err(FlashError::SizeMismatch { .. })
        ));
    }

    #[test]
    fn out_of_range_is_rejected_everywhere() {
        let mut a = array();
        let bad = PageAddr {
            channel: 99,
            ..PageAddr::zero()
        };
        assert!(a.program(bad, &[0]).is_err());
        assert!(a.read(bad).is_err());
        assert!(a.erase_block(bad).is_err());
        assert!(!a.is_programmed(bad));
        assert!(a.peek_page(bad).is_none());
    }

    #[test]
    fn op_counts_track_operations() {
        let mut a = array();
        a.program(PageAddr::zero(), &[9]).unwrap();
        let _ = a.read(PageAddr::zero()).unwrap();
        a.erase_block(PageAddr::zero()).unwrap();
        assert_eq!(a.op_counts(), counts(1, 1, 1));
    }

    #[test]
    fn peek_page_reads_without_counting() {
        let mut a = array();
        a.program(PageAddr::zero(), b"quiet").unwrap();
        assert_eq!(&a.peek_page(PageAddr::zero()).unwrap()[..5], b"quiet");
        assert!(a
            .peek_page(PageAddr {
                page: 1,
                ..PageAddr::zero()
            })
            .is_none());
        assert_eq!(a.op_counts(), counts(0, 1, 0));
    }

    #[test]
    fn snapshot_roundtrips_semantic_state() {
        let mut a = array();
        let g = *a.geometry();
        for page in 0..3 {
            a.program(
                PageAddr {
                    page,
                    ..PageAddr::zero()
                },
                &[page as u8],
            )
            .unwrap();
        }
        let far = PageAddr {
            channel: 2,
            block: 5,
            ..PageAddr::zero()
        };
        a.program(far, b"far").unwrap();
        let _ = a.read(PageAddr::zero()).unwrap();
        let wear = PageAddr {
            block: 7,
            ..PageAddr::zero()
        };
        a.erase_block(wear).unwrap();
        a.erase_block(wear).unwrap();
        a.inject_faults(FaultPlan::none().fail_page(&g, far));
        let _ = a.read(far);
        let snap = a.state_snapshot();
        // Dense pages collapse into one run; the far page is its own run.
        assert!(snap.programmed_runs.contains(&(0, 3)));
        assert_eq!(snap.programmed_runs.len(), 2);
        assert_eq!(snap.pending_retire.len(), 1);
        assert_eq!(snap.op_counts, counts(1, 4, 2));

        let mut b = FlashArray::new(g);
        // Payloads move via the backend; here the heap copy suffices.
        for &(start, len) in &snap.programmed_runs {
            for idx in start..start + len {
                let addr = g.page_from_index(idx);
                b.program(addr, a.peek_page(addr).unwrap()).unwrap();
            }
        }
        b.restore_state(&snap);
        assert_eq!(b.state_snapshot(), snap);
        assert_eq!(b.op_counts(), counts(1, 4, 2));
        assert_eq!(b.erase_count(wear), 2);
        assert_eq!(&b.read(PageAddr::zero()).unwrap()[..1], &[0]);
    }

    #[test]
    fn clone_is_an_independent_heap_copy() {
        let mut a = array();
        a.program(PageAddr::zero(), b"original").unwrap();
        let mut c = a.clone();
        assert_eq!(c.backend(), "heap");
        c.erase_block(PageAddr::zero()).unwrap();
        assert!(!c.is_programmed(PageAddr::zero()));
        assert!(a.is_programmed(PageAddr::zero()));
        assert_eq!(&a.read(PageAddr::zero()).unwrap()[..8], b"original");
    }

    /// A fault plan where every page is transient-faulty and fails
    /// exactly one attempt: deterministic retry behaviour everywhere.
    fn all_transient_once() -> FaultPlan {
        FaultPlan::none()
            .transient(1.0, 5)
            .transient_max_failures(1)
    }

    #[test]
    fn transient_fault_recovers_via_retry() {
        let mut a = array();
        a.program(PageAddr::zero(), b"wobbly bits").unwrap();
        a.inject_faults(all_transient_once());
        let mut stats = ReadFaultStats::new();
        let page = a.read_with_stats(PageAddr::zero(), &mut stats).unwrap();
        assert_eq!(&page[..11], b"wobbly bits");
        assert_eq!(stats.retries_by_round, vec![1]);
        assert_eq!(stats.recovered, 1);
        assert_eq!((stats.remappable, stats.lost), (0, 0));
        // Failed attempts do not advance the page-read counter.
        assert_eq!(a.op_counts().reads, 1);
        #[cfg(feature = "obs")]
        {
            assert_eq!(a.metrics().read_retries(), 1);
            assert_eq!(a.metrics().reads_recovered(), 1);
            assert_eq!(a.metrics().ecc_failures(), 1);
        }
    }

    #[test]
    fn transient_fault_exhausts_budget_without_retirement() {
        let mut a = array();
        a.program(PageAddr::zero(), &[1]).unwrap();
        a.inject_faults(all_transient_once());
        a.set_read_retry(ReadRetryPolicy::disabled());
        let mut stats = ReadFaultStats::new();
        assert!(matches!(
            a.read_with_stats(PageAddr::zero(), &mut stats),
            Err(FlashError::UncorrectableEcc(_))
        ));
        // Transient exhaustion is not a permanent failure: nothing
        // queues for retirement and nothing counts as remappable.
        assert_eq!(stats.total_retries(), 0);
        assert_eq!((stats.remappable, stats.lost), (0, 0));
        assert_eq!(a.pending_retirements(), 0);
        // Restoring the budget recovers the read.
        a.set_read_retry(ReadRetryPolicy::paper_default());
        assert!(a.read(PageAddr::zero()).is_ok());
    }

    #[test]
    fn permanent_fault_queues_block_for_retirement() {
        let mut a = array();
        let g = *a.geometry();
        a.program(PageAddr::zero(), b"doomed").unwrap();
        a.inject_faults(FaultPlan::none().fail_page(&g, PageAddr::zero()));
        let mut stats = ReadFaultStats::new();
        assert!(a.read_with_stats(PageAddr::zero(), &mut stats).is_err());
        assert_eq!(stats.remappable, 1);
        assert_eq!(a.pending_retirements(), 1);
        // The last-gasp path still recovers the bytes for remapping.
        let bytes = a.recover_page_bytes(PageAddr::zero()).unwrap();
        assert_eq!(&bytes[..6], b"doomed");
        // Draining is deterministic and idempotent.
        assert_eq!(a.take_pending_retirements(), vec![0]);
        assert!(a.take_pending_retirements().is_empty());
    }

    #[test]
    fn outage_fault_is_lost_not_remappable() {
        let mut a = array();
        a.program(PageAddr::zero(), &[7]).unwrap();
        a.inject_faults(FaultPlan::none().dead_channel(0));
        let mut stats = ReadFaultStats::new();
        assert!(matches!(
            a.read_with_stats(PageAddr::zero(), &mut stats),
            Err(FlashError::UncorrectableEcc(_))
        ));
        assert_eq!((stats.remappable, stats.lost), (0, 1));
        assert_eq!(a.pending_retirements(), 0);
        assert!(a.recover_page_bytes(PageAddr::zero()).is_none());
    }

    #[test]
    fn wear_threshold_fails_cycled_blocks() {
        let mut a = array();
        a.inject_faults(FaultPlan::none().wear_threshold(2));
        a.program(PageAddr::zero(), &[1]).unwrap();
        assert!(a.read(PageAddr::zero()).is_ok());
        a.erase_block(PageAddr::zero()).unwrap();
        a.erase_block(PageAddr::zero()).unwrap();
        a.program(PageAddr::zero(), &[2]).unwrap();
        let mut stats = ReadFaultStats::new();
        assert!(a.read_with_stats(PageAddr::zero(), &mut stats).is_err());
        assert_eq!(stats.remappable, 1);
        assert_eq!(a.pending_retirements(), 1);
        // A fresh block is unaffected by the wear layer.
        let fresh = PageAddr {
            block: 3,
            ..PageAddr::zero()
        };
        a.program(fresh, &[3]).unwrap();
        assert!(a.read(fresh).is_ok());
    }

    #[test]
    fn mmap_backed_array_matches_heap_semantics() {
        use std::sync::atomic::AtomicU64 as Counter;
        static N: Counter = Counter::new(0);
        let path = std::env::temp_dir().join(format!(
            "deepstore-array-test-{}-{}.img",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        struct Cleanup(std::path::PathBuf);
        impl Drop for Cleanup {
            fn drop(&mut self) {
                let _ = std::fs::remove_file(&self.0);
            }
        }
        let _guard = Cleanup(path.clone());
        let g = SsdConfig::small().geometry;
        let store = crate::image::MmapStore::create(&path, g).unwrap();
        let mut m = FlashArray::with_store(g, Box::new(store));
        assert_eq!(m.backend(), "mmap");
        assert!(m.is_persistent());
        let mut h = FlashArray::new(g);
        for (page, payload) in [(0usize, &b"alpha"[..]), (1, b"beta"), (2, b"gamma")] {
            let addr = PageAddr {
                page,
                ..PageAddr::zero()
            };
            m.program(addr, payload).unwrap();
            h.program(addr, payload).unwrap();
            assert_eq!(m.read(addr).unwrap(), h.read(addr).unwrap());
        }
        m.erase_block(PageAddr::zero()).unwrap();
        h.erase_block(PageAddr::zero()).unwrap();
        assert_eq!(m.op_counts(), h.op_counts());
        assert!(matches!(
            m.read(PageAddr::zero()),
            Err(FlashError::ReadUnwritten(_))
        ));
        // Erase-before-program semantics hold on the image too.
        m.program(PageAddr::zero(), b"fresh").unwrap();
        assert!(matches!(
            m.program(PageAddr::zero(), b"again"),
            Err(FlashError::ProgramWithoutErase(_))
        ));
    }
}
