//! External (host-side) read path: the GPU+SSD baseline's view of the SSD.
//!
//! "The external bandwidth of modern SSDs is limited by flash channel
//! arbitration, the weak processor cores in the SSD controller, and the
//! bandwidth of the PCIe interface" (§2.2). The paper's baseline drive
//! (Intel DC P4500) measures up to 3.2 GB/s externally while the internal
//! aggregate is 32 channels × 800 MB/s = 25.6 GB/s.
//!
//! The host model delivers bytes at the minimum of the PCIe limit and the
//! internal supply, divided by a software-overhead factor calibrated per
//! workload (real filesystems and block stacks never hit the device
//! ceiling; §3's measured breakdowns embed that overhead).

use crate::stream::{stripe_pages, ChannelStream};
use crate::timing::SimDuration;
use crate::SsdConfig;
use serde::{Deserialize, Serialize};

/// Host-side read model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HostReadModel {
    /// The drive configuration.
    pub cfg: SsdConfig,
    /// Multiplier ≥ 1 applied to transfer time to model filesystem /
    /// driver / queueing overheads (1.0 = ideal device-speed reads).
    pub software_overhead: f64,
    /// Number of identical SSDs aggregated (Figure 10b sweeps 1–8).
    pub num_ssds: usize,
}

impl HostReadModel {
    /// Ideal single-drive host model.
    pub fn new(cfg: SsdConfig) -> Self {
        HostReadModel {
            cfg,
            software_overhead: 1.0,
            num_ssds: 1,
        }
    }

    /// Sets the software-overhead multiplier.
    ///
    /// # Panics
    ///
    /// Panics if `overhead < 1.0`.
    pub fn with_software_overhead(mut self, overhead: f64) -> Self {
        assert!(overhead >= 1.0, "overhead must be >= 1.0");
        self.software_overhead = overhead;
        self
    }

    /// Aggregates `n` identical SSDs (reads stripe across them).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn with_ssds(mut self, n: usize) -> Self {
        assert!(n > 0, "need at least one SSD");
        self.num_ssds = n;
        self
    }

    /// Effective sequential read bandwidth seen by the host, in bytes/s.
    ///
    /// Per drive this is `min(PCIe limit, internal supply)`; aggregation
    /// over drives is linear; the software overhead divides the result.
    pub fn effective_bandwidth(&self) -> f64 {
        let internal = ChannelStream::new(&self.cfg)
            .effective_bandwidth(self.cfg.geometry.page_bytes)
            * self.cfg.geometry.channels as f64;
        let per_drive = self.cfg.timing.external_bytes_per_sec.min(internal);
        per_drive * self.num_ssds as f64 / self.software_overhead
    }

    /// Time for the host to read `bytes` bytes sequentially.
    pub fn read_time(&self, bytes: u64) -> SimDuration {
        if bytes == 0 {
            return SimDuration::ZERO;
        }
        // First-byte latency: one flash array read plus one page transfer,
        // then pipelined delivery at the effective bandwidth.
        let first = self.cfg.timing.array_read
            + self.cfg.timing.page_transfer(self.cfg.geometry.page_bytes);
        first + SimDuration::for_transfer(bytes, self.effective_bandwidth())
    }

    /// Time for the host to read `pages` whole pages striped over the
    /// drive's channels — exact event-driven internal time, clamped by the
    /// external link. Used for validation of [`HostReadModel::read_time`].
    pub fn read_pages_exact(&self, pages: u64) -> SimDuration {
        let per_channel = stripe_pages(pages, self.cfg.geometry.channels);
        let internal = crate::stream::all_channels_stream(&self.cfg, &per_channel);
        let bytes = pages * self.cfg.geometry.page_bytes as u64;
        let external = SimDuration::for_transfer(
            bytes,
            self.cfg.timing.external_bytes_per_sec * self.num_ssds as f64 / self.software_overhead,
        );
        internal.max(external)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> HostReadModel {
        HostReadModel::new(SsdConfig::paper_default())
    }

    #[test]
    fn external_link_is_the_bottleneck() {
        // Internal 25.6 GB/s >> external 3.2 GB/s.
        let bw = model().effective_bandwidth();
        assert!((bw - 3.2e9).abs() / 3.2e9 < 0.01, "bw = {bw}");
    }

    #[test]
    fn read_time_scales_linearly() {
        let m = model();
        let t1 = m.read_time(1 << 30);
        let t2 = m.read_time(2 << 30);
        let ratio = t2.as_secs_f64() / t1.as_secs_f64();
        assert!((ratio - 2.0).abs() < 0.01, "ratio = {ratio}");
        // 1 GiB at 3.2 GB/s is ~0.336 s.
        assert!((t1.as_secs_f64() - 0.3355).abs() < 0.01);
    }

    #[test]
    fn software_overhead_slows_reads() {
        let ideal = model().read_time(1 << 30);
        let real = model().with_software_overhead(1.5).read_time(1 << 30);
        let ratio = real.as_secs_f64() / ideal.as_secs_f64();
        assert!((ratio - 1.5).abs() < 0.01);
    }

    #[test]
    fn multiple_ssds_add_bandwidth() {
        let one = model().read_time(1 << 30);
        let four = model().with_ssds(4).read_time(1 << 30);
        let ratio = one.as_secs_f64() / four.as_secs_f64();
        assert!((ratio - 4.0).abs() < 0.05, "ratio = {ratio}");
    }

    #[test]
    fn exact_matches_analytic_for_large_reads() {
        let m = model();
        let pages = 100_000; // 1.6 GB
        let exact = m.read_pages_exact(pages);
        let analytic = m.read_time(pages * 16 * 1024);
        let dev = (exact.as_secs_f64() - analytic.as_secs_f64()).abs() / exact.as_secs_f64();
        assert!(dev < 0.01, "dev = {dev}");
    }

    #[test]
    fn internal_limit_applies_with_many_ssds_of_few_channels() {
        // A 2-channel drive supplies only ~1.56 GB/s internally.
        let mut cfg = SsdConfig::paper_default();
        cfg.geometry.channels = 2;
        let m = HostReadModel::new(cfg);
        let bw = m.effective_bandwidth();
        assert!(bw < 1.7e9, "bw = {bw}");
    }

    #[test]
    fn zero_read_is_free() {
        assert_eq!(model().read_time(0), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "overhead")]
    fn rejects_sub_unity_overhead() {
        let _ = model().with_software_overhead(0.5);
    }
}
