//! SSD simulator substrate for the DeepStore reproduction.
//!
//! The paper validates DeepStore with a simulator built on SSD-Sim and
//! SCALE-Sim (§5). This crate is the SSD-Sim half, rebuilt from scratch:
//!
//! * [`geometry`] — the flash hierarchy of §2.2 (channels → chips → planes →
//!   blocks → pages) and physical page addressing.
//! * [`timing`] — flash array / channel-bus / PCIe / DRAM timing parameters
//!   (paper defaults: 53 µs array reads, 800 MB/s channel buses, 16 KB
//!   pages, 32 channels × 4 chips × 8 planes, 3.2 GB/s external bandwidth).
//! * [`mod@array`] — a functional flash array that stores real bytes with
//!   erase-before-program semantics.
//! * [`ftl`] — a block-level flash translation layer with greedy garbage
//!   collection and wear-leveling counters (§2.2, §4.4).
//! * [`layout`] — feature-database striping across channels and chips
//!   (§4.4) in either packed or page-aligned-per-feature form.
//! * [`stream`] — an event-driven model of streaming page reads with
//!   channel-bus arbitration and plane-level page buffers; this is what
//!   gives DeepStore its internal-bandwidth advantage (§6.3).
//! * [`host`] — the external (PCIe/NVMe block I/O) read path used by the
//!   GPU+SSD baseline.
//!
//! # Example
//!
//! ```
//! use deepstore_flash::{SsdConfig, stream::ChannelStream};
//!
//! let cfg = SsdConfig::paper_default();
//! // Stream 1000 pages from one channel (round-robin over chips/planes).
//! let t = ChannelStream::new(&cfg).stream_pages(1000);
//! // Steady state is bus-bound: ~20 us per 16 KB page at 800 MB/s.
//! assert!(t.as_nanos() > 1000 * 19_000);
//! ```

pub mod array;
pub mod fault;
pub mod ftl;
pub mod gc;
pub mod geometry;
pub mod host;
pub mod image;
pub mod layout;
pub mod obs;
pub mod store;
pub mod stream;
pub mod timing;
pub mod trace;

pub use array::{FlashOpCounts, FlashStateSnapshot};
pub use fault::{FaultOutcome, FaultPlan, OutageSummary};
pub use geometry::{PageAddr, SsdGeometry};
pub use image::{ImageFile, MmapStore, IMAGE_FORMAT_VERSION};
pub use obs::{FlashEventCounts, FlashMetrics};
pub use store::{HeapStore, PageStore};
pub use timing::{FlashTiming, ReadRetryPolicy, SimDuration};

use serde::{Deserialize, Serialize};
use std::fmt;

/// Full SSD configuration: geometry plus timing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SsdConfig {
    /// Physical organization of the flash.
    pub geometry: SsdGeometry,
    /// Timing parameters.
    pub timing: FlashTiming,
}

impl SsdConfig {
    /// The paper's evaluated configuration (§6.1): 32 channels, 4 chips per
    /// channel, 8 planes per chip, 512 blocks per plane, 128 pages per
    /// block, 16 KB pages, 53 µs array reads, 800 MB/s channel buses.
    pub fn paper_default() -> Self {
        SsdConfig {
            geometry: SsdGeometry::paper_default(),
            timing: FlashTiming::paper_default(),
        }
    }

    /// A scaled-down configuration for functional tests and examples
    /// (4 channels × 2 chips × 2 planes × 16 blocks × 16 pages of 16 KB
    /// ≈ 32 MB), with paper timing.
    pub fn small() -> Self {
        SsdConfig {
            geometry: SsdGeometry {
                channels: 4,
                chips_per_channel: 2,
                planes_per_chip: 2,
                blocks_per_plane: 16,
                pages_per_block: 16,
                page_bytes: 16 * 1024,
            },
            timing: FlashTiming::paper_default(),
        }
    }
}

impl Default for SsdConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Errors produced by the SSD simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlashError {
    /// A physical address fell outside the configured geometry.
    AddressOutOfRange(String),
    /// A page was programmed without an intervening erase.
    ProgramWithoutErase(PageAddr),
    /// A read hit a page that was never programmed.
    ReadUnwritten(PageAddr),
    /// A read failed ECC correction (injected fault; see
    /// [`fault::FaultPlan`]).
    UncorrectableEcc(PageAddr),
    /// The drive (or a region of it) is out of free blocks.
    OutOfSpace,
    /// A database id was not found in the metadata store.
    UnknownDb(u64),
    /// Data length did not match the expected record size.
    SizeMismatch {
        /// Expected byte count.
        expected: usize,
        /// Provided byte count.
        found: usize,
    },
    /// A persistent image operation failed (I/O error, corrupt image,
    /// or an operation unsupported by the backend).
    Image(String),
    /// A persisted image (or peer) speaks a different format version.
    VersionMismatch {
        /// The version this build understands.
        expected: u32,
        /// The version found on disk (or on the wire).
        found: u32,
    },
}

impl fmt::Display for FlashError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlashError::AddressOutOfRange(s) => write!(f, "address out of range: {s}"),
            FlashError::ProgramWithoutErase(a) => {
                write!(f, "program without erase at {a:?}")
            }
            FlashError::ReadUnwritten(a) => write!(f, "read of unwritten page {a:?}"),
            FlashError::UncorrectableEcc(a) => {
                write!(f, "uncorrectable ECC error reading {a:?}")
            }
            FlashError::OutOfSpace => write!(f, "out of free blocks"),
            FlashError::UnknownDb(id) => write!(f, "unknown database id {id}"),
            FlashError::SizeMismatch { expected, found } => {
                write!(f, "size mismatch: expected {expected} bytes, found {found}")
            }
            FlashError::Image(s) => write!(f, "image error: {s}"),
            FlashError::VersionMismatch { expected, found } => {
                write!(
                    f,
                    "format version mismatch: expected {expected}, found {found}"
                )
            }
        }
    }
}

impl std::error::Error for FlashError {}

/// Convenient result alias for this crate.
pub type Result<T> = std::result::Result<T, FlashError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_capacity_is_terabyte_class() {
        let g = SsdConfig::paper_default().geometry;
        let bytes = g.total_bytes();
        // 32 * 4 * 8 * 512 * 128 * 16 KiB = 1 TiB.
        assert_eq!(bytes, 1024u64 * 1024 * 1024 * 1024);
    }

    #[test]
    fn small_config_is_small() {
        let g = SsdConfig::small().geometry;
        assert!(g.total_bytes() <= 64 * 1024 * 1024);
    }

    #[test]
    fn errors_display() {
        assert!(FlashError::OutOfSpace.to_string().contains("free blocks"));
        assert!(FlashError::UnknownDb(3).to_string().contains('3'));
    }
}
