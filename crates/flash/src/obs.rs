//! Flash-layer telemetry: event hooks and their snapshot.
//!
//! [`FlashMetrics`] is the collection point for flash events that the
//! pre-existing [`crate::array::FlashArray`] operation counters do not
//! cover: uncorrectable-ECC failures, garbage-collection passes, and
//! channel-bus arbitration waits from the timing model. Every hook body
//! is compiled out when the `obs` cargo feature is off — the type, its
//! accessors and [`FlashEventCounts`] stay available (reporting zeros)
//! so no API surface changes between configurations.
//!
//! All storage is [`deepstore_obs::Counter`] (single relaxed atomic
//! adds), so counts are deterministic under any host thread
//! interleaving — see `crates/obs` for the argument.

use deepstore_obs::Counter;
use serde::{Deserialize, Serialize};

/// Lock-free event counters for one flash array.
#[derive(Debug, Default)]
pub struct FlashMetrics {
    ecc_failures: Counter,
    gc_runs: Counter,
    gc_blocks_reclaimed: Counter,
    bus_wait_ns: Counter,
    bus_transfers: Counter,
    read_retries: Counter,
    read_retry_ns: Counter,
    reads_recovered: Counter,
    remapped_pages: Counter,
    retired_blocks: Counter,
    lost_pages: Counter,
}

impl Clone for FlashMetrics {
    fn clone(&self) -> Self {
        let copy = FlashMetrics::default();
        copy.ecc_failures.add(self.ecc_failures.get());
        copy.gc_runs.add(self.gc_runs.get());
        copy.gc_blocks_reclaimed.add(self.gc_blocks_reclaimed.get());
        copy.bus_wait_ns.add(self.bus_wait_ns.get());
        copy.bus_transfers.add(self.bus_transfers.get());
        copy.read_retries.add(self.read_retries.get());
        copy.read_retry_ns.add(self.read_retry_ns.get());
        copy.reads_recovered.add(self.reads_recovered.get());
        copy.remapped_pages.add(self.remapped_pages.get());
        copy.retired_blocks.add(self.retired_blocks.get());
        copy.lost_pages.add(self.lost_pages.get());
        copy
    }
}

impl FlashMetrics {
    /// Fresh metrics, all zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// A page read failed ECC.
    #[inline]
    pub fn on_ecc_failure(&self) {
        #[cfg(feature = "obs")]
        self.ecc_failures.incr();
    }

    /// A garbage-collection pass reclaimed `blocks` blocks.
    #[inline]
    pub fn on_gc(&self, blocks: u64) {
        #[cfg(feature = "obs")]
        {
            self.gc_runs.incr();
            self.gc_blocks_reclaimed.add(blocks);
        }
        #[cfg(not(feature = "obs"))]
        let _ = blocks;
    }

    /// The timing model charged `wait_ns` of channel-bus arbitration
    /// wait across `transfers` page transfers.
    #[inline]
    pub fn on_bus_wait(&self, wait_ns: u64, transfers: u64) {
        #[cfg(feature = "obs")]
        {
            self.bus_wait_ns.add(wait_ns);
            self.bus_transfers.add(transfers);
        }
        #[cfg(not(feature = "obs"))]
        let _ = (wait_ns, transfers);
    }

    /// A read issued `retries` retry attempts (counting each round,
    /// whether or not it eventually recovered).
    #[inline]
    pub fn on_read_retries(&self, retries: u64) {
        #[cfg(feature = "obs")]
        self.read_retries.add(retries);
        #[cfg(not(feature = "obs"))]
        let _ = retries;
    }

    /// The timing model charged `stall_ns` of simulated read-retry
    /// stall to a scan pass.
    #[inline]
    pub fn on_retry_stall(&self, stall_ns: u64) {
        #[cfg(feature = "obs")]
        self.read_retry_ns.add(stall_ns);
        #[cfg(not(feature = "obs"))]
        let _ = stall_ns;
    }

    /// A read recovered (succeeded after at least one retry).
    #[inline]
    pub fn on_read_recovered(&self) {
        #[cfg(feature = "obs")]
        self.reads_recovered.incr();
    }

    /// The recovery pipeline remapped `pages` pages out of a failing
    /// block and retired the block.
    #[inline]
    pub fn on_remap(&self, pages: u64) {
        #[cfg(feature = "obs")]
        {
            self.remapped_pages.add(pages);
            self.retired_blocks.incr();
        }
        #[cfg(not(feature = "obs"))]
        let _ = pages;
    }

    /// `pages` pages were declared lost (no remap source).
    #[inline]
    pub fn on_lost(&self, pages: u64) {
        #[cfg(feature = "obs")]
        self.lost_pages.add(pages);
        #[cfg(not(feature = "obs"))]
        let _ = pages;
    }

    /// ECC failures observed so far.
    #[must_use]
    pub fn ecc_failures(&self) -> u64 {
        self.ecc_failures.get()
    }

    /// GC passes run so far.
    #[must_use]
    pub fn gc_runs(&self) -> u64 {
        self.gc_runs.get()
    }

    /// Blocks reclaimed by GC so far.
    #[must_use]
    pub fn gc_blocks_reclaimed(&self) -> u64 {
        self.gc_blocks_reclaimed.get()
    }

    /// Total simulated bus-arbitration wait (ns) charged so far.
    #[must_use]
    pub fn bus_wait_ns(&self) -> u64 {
        self.bus_wait_ns.get()
    }

    /// Page transfers the bus-wait total covers.
    #[must_use]
    pub fn bus_transfers(&self) -> u64 {
        self.bus_transfers.get()
    }

    /// Read-retry attempts issued so far.
    #[must_use]
    pub fn read_retries(&self) -> u64 {
        self.read_retries.get()
    }

    /// Simulated read-retry stall (ns) charged so far.
    #[must_use]
    pub fn read_retry_ns(&self) -> u64 {
        self.read_retry_ns.get()
    }

    /// Reads that succeeded after at least one retry.
    #[must_use]
    pub fn reads_recovered(&self) -> u64 {
        self.reads_recovered.get()
    }

    /// Pages remapped out of retired blocks so far.
    #[must_use]
    pub fn remapped_pages(&self) -> u64 {
        self.remapped_pages.get()
    }

    /// Blocks retired (taken out of allocation) so far.
    #[must_use]
    pub fn retired_blocks(&self) -> u64 {
        self.retired_blocks.get()
    }

    /// Pages declared lost (no remap source) so far.
    #[must_use]
    pub fn lost_pages(&self) -> u64 {
        self.lost_pages.get()
    }
}

/// A point-in-time copy of every flash event count, combining the
/// array's operation counters with the [`FlashMetrics`] hooks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlashEventCounts {
    /// Page reads served.
    pub page_reads: u64,
    /// Pages programmed.
    pub programs: u64,
    /// Blocks erased.
    pub erases: u64,
    /// Reads that failed ECC.
    pub ecc_failures: u64,
    /// Garbage-collection passes.
    pub gc_runs: u64,
    /// Blocks reclaimed by GC.
    pub gc_blocks_reclaimed: u64,
    /// Simulated channel-bus arbitration wait, in nanoseconds.
    pub bus_wait_ns: u64,
    /// Page transfers covered by the bus-wait total.
    pub bus_transfers: u64,
    /// Read-retry attempts issued.
    pub read_retries: u64,
    /// Simulated read-retry stall, in nanoseconds.
    pub read_retry_ns: u64,
    /// Reads that succeeded after at least one retry.
    pub reads_recovered: u64,
    /// Pages remapped out of retired blocks.
    pub remapped_pages: u64,
    /// Blocks retired (removed from allocation).
    pub retired_blocks: u64,
    /// Pages declared lost (no remap source).
    pub lost_pages: u64,
}
