//! Flash-layer telemetry: event hooks and their snapshot.
//!
//! [`FlashMetrics`] is the collection point for flash events that the
//! pre-existing [`crate::array::FlashArray`] operation counters do not
//! cover: uncorrectable-ECC failures, garbage-collection passes, and
//! channel-bus arbitration waits from the timing model. Every hook body
//! is compiled out when the `obs` cargo feature is off — the type, its
//! accessors and [`FlashEventCounts`] stay available (reporting zeros)
//! so no API surface changes between configurations.
//!
//! All storage is [`deepstore_obs::Counter`] (single relaxed atomic
//! adds), so counts are deterministic under any host thread
//! interleaving — see `crates/obs` for the argument.

use deepstore_obs::Counter;
use serde::{Deserialize, Serialize};

/// Lock-free event counters for one flash array.
#[derive(Debug, Default)]
pub struct FlashMetrics {
    ecc_failures: Counter,
    gc_runs: Counter,
    gc_blocks_reclaimed: Counter,
    bus_wait_ns: Counter,
    bus_transfers: Counter,
}

impl Clone for FlashMetrics {
    fn clone(&self) -> Self {
        let copy = FlashMetrics::default();
        copy.ecc_failures.add(self.ecc_failures.get());
        copy.gc_runs.add(self.gc_runs.get());
        copy.gc_blocks_reclaimed.add(self.gc_blocks_reclaimed.get());
        copy.bus_wait_ns.add(self.bus_wait_ns.get());
        copy.bus_transfers.add(self.bus_transfers.get());
        copy
    }
}

impl FlashMetrics {
    /// Fresh metrics, all zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// A page read failed ECC.
    #[inline]
    pub fn on_ecc_failure(&self) {
        #[cfg(feature = "obs")]
        self.ecc_failures.incr();
    }

    /// A garbage-collection pass reclaimed `blocks` blocks.
    #[inline]
    pub fn on_gc(&self, blocks: u64) {
        #[cfg(feature = "obs")]
        {
            self.gc_runs.incr();
            self.gc_blocks_reclaimed.add(blocks);
        }
        #[cfg(not(feature = "obs"))]
        let _ = blocks;
    }

    /// The timing model charged `wait_ns` of channel-bus arbitration
    /// wait across `transfers` page transfers.
    #[inline]
    pub fn on_bus_wait(&self, wait_ns: u64, transfers: u64) {
        #[cfg(feature = "obs")]
        {
            self.bus_wait_ns.add(wait_ns);
            self.bus_transfers.add(transfers);
        }
        #[cfg(not(feature = "obs"))]
        let _ = (wait_ns, transfers);
    }

    /// ECC failures observed so far.
    #[must_use]
    pub fn ecc_failures(&self) -> u64 {
        self.ecc_failures.get()
    }

    /// GC passes run so far.
    #[must_use]
    pub fn gc_runs(&self) -> u64 {
        self.gc_runs.get()
    }

    /// Blocks reclaimed by GC so far.
    #[must_use]
    pub fn gc_blocks_reclaimed(&self) -> u64 {
        self.gc_blocks_reclaimed.get()
    }

    /// Total simulated bus-arbitration wait (ns) charged so far.
    #[must_use]
    pub fn bus_wait_ns(&self) -> u64 {
        self.bus_wait_ns.get()
    }

    /// Page transfers the bus-wait total covers.
    #[must_use]
    pub fn bus_transfers(&self) -> u64 {
        self.bus_transfers.get()
    }
}

/// A point-in-time copy of every flash event count, combining the
/// array's operation counters with the [`FlashMetrics`] hooks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlashEventCounts {
    /// Page reads served.
    pub page_reads: u64,
    /// Pages programmed.
    pub programs: u64,
    /// Blocks erased.
    pub erases: u64,
    /// Reads that failed ECC.
    pub ecc_failures: u64,
    /// Garbage-collection passes.
    pub gc_runs: u64,
    /// Blocks reclaimed by GC.
    pub gc_blocks_reclaimed: u64,
    /// Simulated channel-bus arbitration wait, in nanoseconds.
    pub bus_wait_ns: u64,
    /// Page transfers covered by the bus-wait total.
    pub bus_transfers: u64,
}
