//! Pluggable page-payload backends for the functional flash array.
//!
//! [`crate::array::FlashArray`] owns the NAND *semantics* — erase-before-
//! program enforcement, the programmed-page set, per-block erase counts,
//! fault injection and the retry ladder — while the raw page payloads
//! live behind the [`PageStore`] trait. Two backends implement it:
//!
//! * [`HeapStore`] — the original sparse in-memory store (a hash map of
//!   page payloads). Fast, volatile, bounded by RAM.
//! * [`crate::image::MmapStore`] — a single-file mmap-backed image whose
//!   reads borrow straight out of the mapping (zero-copy) and whose
//!   state survives process exit via a crash-safe manifest commit.
//!
//! Both backends must be bit-identical under the array's semantics: a
//! program writes the payload zero-padded to the page size, and reads of
//! a programmed page return exactly those `page_bytes` bytes.

use crate::Result;
use std::collections::HashMap;
use std::fmt::Debug;

/// Raw page-payload storage behind [`crate::array::FlashArray`].
///
/// The array guarantees it only calls [`PageStore::page`] for pages it
/// has programmed and not since erased, so implementations may treat a
/// lookup of an unprogrammed page as a logic error.
pub trait PageStore: Send + Sync + Debug {
    /// Borrows the payload of a programmed page (exactly the backing
    /// page size long). Reads take `&self` so concurrent scan shards can
    /// stream different channels of one store simultaneously.
    ///
    /// # Panics
    ///
    /// May panic if the page was never programmed (the array checks its
    /// programmed-page set first).
    fn page(&self, idx: u64) -> &[u8];

    /// Stores a page payload, zero-padded to the page size. The array
    /// has already validated the address and the erase-before-program
    /// rule; `data` never exceeds the page size.
    fn program(&mut self, idx: u64, data: &[u8]);

    /// Erases `count` consecutive pages starting at `first` (one block:
    /// the dense page index is block-contiguous). NAND erase pulls every
    /// cell to the all-ones state, so persistent backends 0xFF-fill the
    /// range; the heap backend simply drops the payloads.
    fn erase(&mut self, first: u64, count: u64);

    /// Forces buffered page payloads to durable storage (msync for the
    /// mmap backend). No-op for volatile backends.
    ///
    /// # Errors
    ///
    /// Returns [`crate::FlashError::Image`] when the backing file cannot
    /// be synced.
    fn flush(&mut self) -> Result<()>;

    /// Commits a device manifest alongside the page payloads: sync the
    /// pages, write the manifest, then publish it with a new header
    /// generation (see [`crate::image`] for the ordering argument).
    /// `clean` records whether the device is being closed cleanly.
    ///
    /// # Errors
    ///
    /// Returns [`crate::FlashError::Image`] if the backend is not
    /// persistent or the commit fails.
    fn commit(&mut self, manifest: &[u8], clean: bool) -> Result<()>;

    /// Whether commits survive process exit.
    fn is_persistent(&self) -> bool;

    /// Short backend name for diagnostics ("heap" / "mmap").
    fn backend(&self) -> &'static str;
}

/// The in-memory backend: sparse page payloads on the heap.
#[derive(Debug, Clone)]
pub struct HeapStore {
    page_bytes: usize,
    data: HashMap<u64, Vec<u8>>,
}

impl HeapStore {
    /// Creates an empty heap store for pages of `page_bytes` bytes.
    pub fn new(page_bytes: usize) -> Self {
        HeapStore {
            page_bytes,
            data: HashMap::new(),
        }
    }
}

impl PageStore for HeapStore {
    fn page(&self, idx: u64) -> &[u8] {
        self.data.get(&idx).expect("programmed page has a payload")
    }

    fn program(&mut self, idx: u64, data: &[u8]) {
        let mut page = data.to_vec();
        page.resize(self.page_bytes, 0);
        self.data.insert(idx, page);
    }

    fn erase(&mut self, first: u64, count: u64) {
        for idx in first..first + count {
            self.data.remove(&idx);
        }
    }

    fn flush(&mut self) -> Result<()> {
        Ok(())
    }

    fn commit(&mut self, _manifest: &[u8], _clean: bool) -> Result<()> {
        Err(crate::FlashError::Image(
            "the in-memory backend cannot commit an image".into(),
        ))
    }

    fn is_persistent(&self) -> bool {
        false
    }

    fn backend(&self) -> &'static str {
        "heap"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heap_store_pads_and_roundtrips() {
        let mut s = HeapStore::new(8);
        s.program(3, b"abc");
        assert_eq!(s.page(3), b"abc\0\0\0\0\0");
        s.program(4, b"");
        assert_eq!(s.page(4), &[0u8; 8]);
    }

    #[test]
    fn heap_store_erase_drops_range() {
        let mut s = HeapStore::new(4);
        for idx in 0..6 {
            s.program(idx, &[idx as u8]);
        }
        s.erase(1, 3);
        assert_eq!(s.page(0), &[0, 0, 0, 0]);
        assert_eq!(s.page(4), &[4, 0, 0, 0]);
        assert_eq!(s.page(5), &[5, 0, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "programmed page")]
    fn heap_store_panics_on_unprogrammed_lookup() {
        let s = HeapStore::new(4);
        let _ = s.page(0);
    }

    #[test]
    fn heap_store_is_not_persistent() {
        let mut s = HeapStore::new(4);
        assert!(!s.is_persistent());
        assert_eq!(s.backend(), "heap");
        assert!(s.flush().is_ok());
        assert!(s.commit(b"{}", true).is_err());
    }
}
