//! Timing parameters and simulated-time types.
//!
//! Defaults follow the paper's experimental setup (§6.1): 53 µs flash array
//! access latency (swept 7–212 µs in Figure 9), 800 MB/s per-channel bus
//! bandwidth, 3.2 GB/s measured external SSD bandwidth, and 20 GB/s SSD
//! controller DRAM bandwidth (§4.5).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul, Sub};

/// A duration in simulated time, stored as integer nanoseconds.
///
/// A dedicated newtype (C-NEWTYPE) keeps simulated time from mixing with
/// wall-clock `std::time::Duration` and gives the simulators saturating
/// arithmetic.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimDuration {
    /// Zero duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Constructs from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Constructs from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Constructs from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Constructs from (possibly fractional) seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "invalid duration {secs}");
        SimDuration((secs * 1e9).round() as u64)
    }

    /// Time to move `bytes` bytes at `bytes_per_sec`.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_sec` is zero.
    pub fn for_transfer(bytes: u64, bytes_per_sec: f64) -> Self {
        assert!(bytes_per_sec > 0.0, "zero bandwidth");
        Self::from_secs_f64(bytes as f64 / bytes_per_sec)
    }

    /// Nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds as f64.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Milliseconds as f64.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// The larger of two durations.
    pub fn max(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.max(rhs.0))
    }

    /// The smaller of two durations.
    pub fn min(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.min(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

/// The read-retry ladder: how many attempts a page read gets and what
/// each retry costs in simulated time.
///
/// NAND read-retry re-senses the page at shifted reference voltages;
/// each successive retry tries a more aggressive (and slower) recovery
/// mode, so the ladder's cost escalates linearly: retry `k` (1-based)
/// costs `first_retry + step × (k − 1)` on top of the normal page read.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReadRetryPolicy {
    /// Total attempts a read gets (1 = no retries).
    pub max_attempts: u32,
    /// Simulated cost of the first retry.
    pub first_retry: SimDuration,
    /// Additional cost of each subsequent retry.
    pub step: SimDuration,
}

impl ReadRetryPolicy {
    /// Default ladder: 4 attempts, 60 µs for the first retry, 20 µs
    /// steeper per round (roughly an extra array read plus transfer at
    /// each shifted-voltage re-sense).
    pub fn paper_default() -> Self {
        ReadRetryPolicy {
            max_attempts: 4,
            first_retry: SimDuration::from_micros(60),
            step: SimDuration::from_micros(20),
        }
    }

    /// A policy with retries disabled (single attempt).
    pub fn disabled() -> Self {
        ReadRetryPolicy {
            max_attempts: 1,
            first_retry: SimDuration::ZERO,
            step: SimDuration::ZERO,
        }
    }

    /// Simulated cost of retry `k` (1-based). `k = 0` costs nothing
    /// (the initial attempt is part of the normal read).
    pub fn cost_of(&self, k: u32) -> SimDuration {
        if k == 0 {
            return SimDuration::ZERO;
        }
        self.first_retry + self.step * u64::from(k - 1)
    }
}

impl Default for ReadRetryPolicy {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Flash and interconnect timing parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlashTiming {
    /// Flash array read latency (cell array → plane page buffer).
    pub array_read: SimDuration,
    /// Flash page program latency.
    pub program: SimDuration,
    /// Block erase latency.
    pub erase: SimDuration,
    /// Per-channel bus bandwidth in bytes/s (ONFI-class, 800 MB/s).
    pub channel_bus_bytes_per_sec: f64,
    /// Per-chip interface bandwidth in bytes/s (ONFI 4.x NV-DDR3,
    /// 1.2 GB/s [§4.4]): the rate at which a chip-level accelerator can
    /// drain its own chip's page buffers without touching the channel bus.
    pub chip_interface_bytes_per_sec: f64,
    /// External (PCIe/NVMe) bandwidth in bytes/s (measured 3.2 GB/s on the
    /// baseline Intel DC P4500).
    pub external_bytes_per_sec: f64,
    /// SSD controller DRAM bandwidth in bytes/s (§4.5: 15–26 GB/s; we use
    /// the paper's 20 GB/s budget figure).
    pub dram_bytes_per_sec: f64,
    /// Fixed per-command overhead on the channel bus (command/address
    /// cycles), applied once per page transfer.
    pub bus_command_overhead: SimDuration,
    /// The read-retry ladder for ECC failures.
    pub read_retry: ReadRetryPolicy,
}

impl FlashTiming {
    /// Paper defaults (§6.1, §4.5).
    pub fn paper_default() -> Self {
        FlashTiming {
            array_read: SimDuration::from_micros(53),
            program: SimDuration::from_micros(600),
            erase: SimDuration::from_millis(3),
            channel_bus_bytes_per_sec: 800e6,
            chip_interface_bytes_per_sec: 1.2e9,
            external_bytes_per_sec: 3.2e9,
            dram_bytes_per_sec: 20e9,
            bus_command_overhead: SimDuration::from_nanos(200),
            read_retry: ReadRetryPolicy::paper_default(),
        }
    }

    /// Returns a copy with the array read latency scaled by `num/den`
    /// (Figure 9 sweeps ratios 1:8 through 4:1 of the 53 µs default).
    pub fn with_read_latency_ratio(&self, num: u64, den: u64) -> Self {
        let mut t = self.clone();
        t.array_read = SimDuration::from_nanos(self.array_read.as_nanos() * num / den);
        t
    }

    /// Time to move one page of `page_bytes` over the channel bus.
    pub fn page_transfer(&self, page_bytes: usize) -> SimDuration {
        SimDuration::for_transfer(page_bytes as u64, self.channel_bus_bytes_per_sec)
            + self.bus_command_overhead
    }
}

impl Default for FlashTiming {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimDuration::from_micros(1), SimDuration::from_nanos(1000));
        assert_eq!(SimDuration::from_millis(1), SimDuration::from_micros(1000));
        assert_eq!(
            SimDuration::from_secs_f64(0.5),
            SimDuration::from_millis(500)
        );
    }

    #[test]
    fn arithmetic() {
        let a = SimDuration::from_nanos(100);
        let b = SimDuration::from_nanos(40);
        assert_eq!((a + b).as_nanos(), 140);
        assert_eq!((a - b).as_nanos(), 60);
        assert_eq!((b - a).as_nanos(), 0); // saturating
        assert_eq!((a * 3).as_nanos(), 300);
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
        let total: SimDuration = [a, b].into_iter().sum();
        assert_eq!(total.as_nanos(), 140);
    }

    #[test]
    fn transfer_time_matches_bandwidth() {
        // 16 KB at 800 MB/s = 20.48 us.
        let t = SimDuration::for_transfer(16 * 1024, 800e6);
        assert!((t.as_secs_f64() - 20.48e-6).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "zero bandwidth")]
    fn transfer_rejects_zero_bandwidth() {
        let _ = SimDuration::for_transfer(1, 0.0);
    }

    #[test]
    fn display_scales_units() {
        assert_eq!(SimDuration::from_nanos(5).to_string(), "5ns");
        assert!(SimDuration::from_micros(5).to_string().ends_with("us"));
        assert!(SimDuration::from_millis(5).to_string().ends_with("ms"));
        assert!(SimDuration::from_secs_f64(5.0).to_string().ends_with('s'));
    }

    #[test]
    fn latency_ratio_scales() {
        let t = FlashTiming::paper_default();
        assert_eq!(
            t.with_read_latency_ratio(4, 1).array_read,
            SimDuration::from_micros(212)
        );
        assert_eq!(
            t.with_read_latency_ratio(1, 8).array_read,
            SimDuration::from_nanos(53_000 / 8)
        );
    }

    #[test]
    fn retry_ladder_escalates() {
        let p = ReadRetryPolicy::paper_default();
        assert_eq!(p.cost_of(0), SimDuration::ZERO);
        assert_eq!(p.cost_of(1), SimDuration::from_micros(60));
        assert_eq!(p.cost_of(2), SimDuration::from_micros(80));
        assert_eq!(p.cost_of(3), SimDuration::from_micros(100));
        let off = ReadRetryPolicy::disabled();
        assert_eq!(off.max_attempts, 1);
        assert_eq!(off.cost_of(1), SimDuration::ZERO);
    }

    #[test]
    fn page_transfer_includes_command_overhead() {
        let t = FlashTiming::paper_default();
        let xfer = t.page_transfer(16 * 1024);
        assert!(xfer > SimDuration::from_micros(20));
        assert!(xfer < SimDuration::from_micros(22));
    }
}
