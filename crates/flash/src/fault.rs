//! Fault injection: a layered model of NAND read failures.
//!
//! Real NAND does not fail as a static list of bad pages. Failures come
//! in layers with very different recovery stories (§2.2 background;
//! reliability behaviour follows standard NAND practice):
//!
//! * **Transient ECC failures** — a read trips the ECC decoder, but a
//!   *read-retry* at a shifted sense voltage usually succeeds. The
//!   simulator models this as a deterministic per-page *fail count*: a
//!   transient-faulty page fails its first `fail_count` read attempts
//!   and succeeds on every attempt after that. Replays are exactly
//!   reproducible, and a retry budget larger than the plan's
//!   `max_fail_attempts` is *guaranteed* to recover every transient
//!   page — which is what lets the chaos harness pin "transient-only
//!   faults + retries ⇒ bit-identical results".
//! * **Permanent page failures** — the page fails every attempt. The
//!   data is still recoverable once through the slow soft-decode
//!   "last-gasp" path, so the FTL can remap the block and retire it.
//! * **Wear-coupled failures** — a page becomes permanently unreadable
//!   once its block's erase count crosses a threshold (program/erase
//!   cycling wears out cells). Same recovery story as permanent pages.
//! * **Outage domains** — a whole channel or chip drops off the bus
//!   (firmware hang, broken TSV). There is no remap source: reads fail
//!   every attempt and the data is *lost* until re-written by the host.
//!
//! A [`FaultPlan`] composes any subset of these layers, and
//! [`FaultPlan::outcome`] answers "what happens to attempt `n` of a
//! read of this page?" deterministically — same plan, same answer, on
//! every replay and at every scan parallelism.

use crate::geometry::{PageAddr, SsdGeometry};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// What happens to one read attempt of one page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultOutcome {
    /// The attempt succeeds.
    Ok,
    /// The attempt fails ECC, but a retry may succeed.
    Transient,
    /// The attempt fails ECC and no number of retries will help.
    Permanent,
}

/// The transient-fault layer: a deterministic fraction of pages fail
/// their first few read attempts and then recover.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransientFaults {
    /// Fraction of pages affected, in `[0, 1]`.
    pub rate: f64,
    /// Seed for the page-selection and fail-count hashes.
    pub seed: u64,
    /// Upper bound on any page's fail count (each affected page fails
    /// a deterministic `1..=max_fail_attempts` attempts, then recovers).
    pub max_fail_attempts: u32,
}

/// A deterministic, layered plan of NAND read faults.
///
/// The plan is pure configuration: it owns no clock and no RNG state,
/// so the same plan produces the same outcome for the same
/// `(page, attempt)` on every replay.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Pages that fail every read attempt (remappable: the bytes are
    /// still recoverable once via the soft-decode path).
    permanent: HashSet<u64>,
    /// Transient layer, if armed. `Some` with `rate == 0.0` still
    /// counts as armed: every read consults the layer (the bench's
    /// fault-overhead check exercises exactly this configuration).
    transient: Option<TransientFaults>,
    /// Blocks whose erase count reaches this threshold fail
    /// permanently (remappable).
    wear_threshold: Option<u64>,
    /// Channels that dropped off the bus entirely (no remap source).
    dead_channels: HashSet<u64>,
    /// `(channel, chip)` pairs that dropped off the bus (no remap
    /// source).
    dead_chips: HashSet<(u64, u64)>,
}

/// splitmix64 of `seed ^ f(idx)` — the repo-wide deterministic hash.
fn splitmix(seed: u64, idx: u64) -> u64 {
    let mut z = seed ^ idx.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// No faults.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Marks a specific page as permanently unreadable.
    pub fn fail_page(mut self, geometry: &SsdGeometry, addr: PageAddr) -> Self {
        self.permanent.insert(geometry.page_index(addr));
        self
    }

    /// Permanently fails an (approximately) `rate` fraction of all
    /// pages, deterministically derived from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is outside `[0, 1]`.
    pub fn random(geometry: &SsdGeometry, rate: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate must be in [0, 1]");
        let mut permanent = HashSet::new();
        let threshold = (rate * u64::MAX as f64) as u64;
        for idx in 0..geometry.total_pages() {
            if splitmix(seed, idx) < threshold {
                permanent.insert(idx);
            }
        }
        FaultPlan {
            permanent,
            ..FaultPlan::default()
        }
    }

    /// Arms the transient layer: an (approximately) `rate` fraction of
    /// pages fail their first 1–3 read attempts and then recover.
    /// Use [`FaultPlan::transient_max_failures`] to change the bound.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is outside `[0, 1]`.
    pub fn transient(mut self, rate: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate must be in [0, 1]");
        let max_fail_attempts = self.transient.as_ref().map_or(3, |t| t.max_fail_attempts);
        self.transient = Some(TransientFaults {
            rate,
            seed,
            max_fail_attempts,
        });
        self
    }

    /// Caps every transient page's fail count at `n` attempts (a retry
    /// budget of more than `n` attempts is then guaranteed to recover
    /// every transient page).
    ///
    /// # Panics
    ///
    /// Panics if the transient layer is not armed or `n` is zero.
    pub fn transient_max_failures(mut self, n: u32) -> Self {
        assert!(n >= 1, "a transient page fails at least one attempt");
        let t = self
            .transient
            .as_mut()
            .expect("arm the transient layer first");
        t.max_fail_attempts = n;
        self
    }

    /// Pages of blocks whose erase count reaches `erases` fail
    /// permanently (wear-out).
    pub fn wear_threshold(mut self, erases: u64) -> Self {
        self.wear_threshold = Some(erases);
        self
    }

    /// Marks a whole channel as dead: every read on it fails and there
    /// is no remap source (the data is lost).
    pub fn dead_channel(mut self, channel: usize) -> Self {
        self.dead_channels.insert(channel as u64);
        self
    }

    /// Marks one chip as dead: every read on it fails and there is no
    /// remap source (the data is lost).
    pub fn dead_chip(mut self, channel: usize, chip: usize) -> Self {
        self.dead_chips.insert((channel as u64, chip as u64));
        self
    }

    /// A plan that kills the whole device: every channel is an outage
    /// domain, so every read fails permanently with no remap source.
    /// This is how a cluster simulates losing an entire drive.
    pub fn dead_device(geometry: &SsdGeometry) -> Self {
        let mut plan = FaultPlan::none();
        for ch in 0..geometry.channels {
            plan = plan.dead_channel(ch);
        }
        plan
    }

    /// The dead channels, sorted. Surfaces the outage topology so
    /// higher layers (cluster replica placement, rebalancing) can
    /// reason about which fault domains a drive has lost.
    pub fn dead_channel_list(&self) -> Vec<usize> {
        let mut chs: Vec<usize> = self.dead_channels.iter().map(|&c| c as usize).collect();
        chs.sort_unstable();
        chs
    }

    /// The dead `(channel, chip)` pairs, sorted.
    pub fn dead_chip_list(&self) -> Vec<(usize, usize)> {
        let mut chips: Vec<(usize, usize)> = self
            .dead_chips
            .iter()
            .map(|&(c, ch)| (c as usize, ch as usize))
            .collect();
        chips.sort_unstable();
        chips
    }

    /// Summarizes the plan's outage domains against a geometry: how
    /// much of the address space is lossy with no remap source.
    pub fn outage_summary(&self, geometry: &SsdGeometry) -> OutageSummary {
        let pages_per_chip = (geometry.planes_per_chip
            * geometry.blocks_per_plane
            * geometry.pages_per_block) as u64;
        let pages_per_channel = geometry.chips_per_channel as u64 * pages_per_chip;
        let channel_pages = self.dead_channels.len() as u64 * pages_per_channel;
        // Chips inside an already-dead channel must not be double
        // counted.
        let extra_chip_pages = self
            .dead_chips
            .iter()
            .filter(|(c, _)| !self.dead_channels.contains(c))
            .count() as u64
            * pages_per_chip;
        OutageSummary {
            dead_channels: self.dead_channel_list(),
            dead_chips: self.dead_chip_list(),
            outage_pages: channel_pages + extra_chip_pages,
            total_pages: geometry.total_pages(),
        }
    }

    /// The armed transient layer, if any.
    pub fn transient_layer(&self) -> Option<&TransientFaults> {
        self.transient.as_ref()
    }

    /// How many attempts a transient-faulty page fails before it
    /// recovers: a deterministic value in `1..=max_fail_attempts`.
    /// `0` for pages the transient layer does not affect.
    fn transient_fail_count(&self, idx: u64) -> u32 {
        let Some(t) = &self.transient else { return 0 };
        let threshold = (t.rate * u64::MAX as f64) as u64;
        // Domain-separate the selection hash from the fail-count hash
        // so the fail count is independent of how close the page was
        // to the selection threshold.
        if splitmix(t.seed, idx) >= threshold {
            return 0;
        }
        let max = t.max_fail_attempts.max(1);
        1 + (splitmix(t.seed ^ 0x5EED_C0DE_F417_0001, idx) % u64::from(max)) as u32
    }

    /// True when `addr` sits in a dead channel or dead chip: the read
    /// fails every attempt *and* there is no remap source.
    pub fn in_outage_domain(&self, addr: PageAddr) -> bool {
        self.dead_channels.contains(&(addr.channel as u64))
            || self
                .dead_chips
                .contains(&(addr.channel as u64, addr.chip as u64))
    }

    /// The outcome of read attempt `attempt` (0-based) of `addr`, given
    /// the current erase count of the page's block.
    ///
    /// Deterministic: depends only on the plan, the address, the
    /// attempt index and `block_erases` — never on wall-clock state.
    pub fn outcome(
        &self,
        geometry: &SsdGeometry,
        addr: PageAddr,
        attempt: u32,
        block_erases: u64,
    ) -> FaultOutcome {
        if self.in_outage_domain(addr) {
            return FaultOutcome::Permanent;
        }
        let idx = geometry.page_index(addr);
        if self.permanent.contains(&idx) {
            return FaultOutcome::Permanent;
        }
        if let Some(limit) = self.wear_threshold {
            if block_erases >= limit {
                return FaultOutcome::Permanent;
            }
        }
        if attempt < self.transient_fail_count(idx) {
            return FaultOutcome::Transient;
        }
        FaultOutcome::Ok
    }

    /// Whether a single-attempt read of the page fails for a
    /// *non-transient* reason (the pre-retry notion of "this page is
    /// bad"; transient pages are not reported here because a retry
    /// recovers them).
    pub fn fails(&self, geometry: &SsdGeometry, addr: PageAddr) -> bool {
        self.in_outage_domain(addr) || self.permanent.contains(&geometry.page_index(addr))
    }

    /// Number of permanently failing pages (outage domains and the
    /// wear layer are address-space-sized and not counted here).
    pub fn len(&self) -> usize {
        self.permanent.len()
    }

    /// True when no fault layer is armed. A transient layer with
    /// `rate == 0` still counts as armed — reads consult it — which is
    /// exactly the configuration the bench's overhead check measures.
    pub fn is_empty(&self) -> bool {
        self.permanent.is_empty()
            && self.transient.is_none()
            && self.wear_threshold.is_none()
            && self.dead_channels.is_empty()
            && self.dead_chips.is_empty()
    }
}

/// A fault plan's outage topology against a concrete geometry: which
/// fault domains are gone, and how much of the address space they
/// cover. Produced by [`FaultPlan::outage_summary`]; the cluster layer
/// uses it to decide whether a drive is partially degraded (route
/// around the affected partitions) or fully dead (stop placing
/// replicas on it).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OutageSummary {
    /// Dead channels, sorted.
    pub dead_channels: Vec<usize>,
    /// Dead `(channel, chip)` pairs, sorted.
    pub dead_chips: Vec<(usize, usize)>,
    /// Pages inside an outage domain (unreadable, no remap source).
    pub outage_pages: u64,
    /// Total pages in the geometry.
    pub total_pages: u64,
}

impl OutageSummary {
    /// True when every page of the device is inside an outage domain.
    pub fn device_dead(&self) -> bool {
        self.total_pages > 0 && self.outage_pages == self.total_pages
    }

    /// Fraction of the address space inside outage domains, in `[0, 1]`.
    pub fn outage_fraction(&self) -> f64 {
        if self.total_pages == 0 {
            0.0
        } else {
            self.outage_pages as f64 / self.total_pages as f64
        }
    }
}

/// Functional per-scan read-fault statistics.
///
/// These are **not** obs-gated: retry counts feed the timing model (each
/// retry round has an escalating simulated cost) and the per-retry trace
/// spans, both of which must be identical with and without the `obs`
/// feature. Deterministic by construction: every count is derived from
/// the fault plan and the read order, which are fixed per scan shard.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReadFaultStats {
    /// `retries_by_round[r]` counts issued retry number `r + 1` across
    /// all reads (a read that needed three attempts contributes to
    /// rounds 0 and 1). The index is the input to the escalating
    /// retry-latency ladder.
    pub retries_by_round: Vec<u64>,
    /// Reads that succeeded after at least one retry.
    pub recovered: u64,
    /// Reads that failed permanently but have a remap source (page or
    /// wear faults: the FTL will retire the block and remap the data).
    pub remappable: u64,
    /// Reads that failed with no remap source (outage domains): the
    /// data is lost until rewritten.
    pub lost: u64,
}

impl ReadFaultStats {
    /// Fresh, all-zero stats.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that retry round `round` (0-based) was issued.
    pub fn on_retry(&mut self, round: usize) {
        if self.retries_by_round.len() <= round {
            self.retries_by_round.resize(round + 1, 0);
        }
        self.retries_by_round[round] += 1;
    }

    /// Total retries issued.
    pub fn total_retries(&self) -> u64 {
        self.retries_by_round.iter().sum()
    }

    /// Folds another shard's stats into this one. Merging is
    /// commutative and associative, so any deterministic merge order
    /// (the engine uses channel order) yields identical totals.
    pub fn merge(&mut self, other: &ReadFaultStats) {
        if self.retries_by_round.len() < other.retries_by_round.len() {
            self.retries_by_round
                .resize(other.retries_by_round.len(), 0);
        }
        for (mine, theirs) in self
            .retries_by_round
            .iter_mut()
            .zip(&other.retries_by_round)
        {
            *mine += theirs;
        }
        self.recovered += other.recovered;
        self.remappable += other.remappable;
        self.lost += other.lost;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SsdConfig;

    #[test]
    fn explicit_page_fails() {
        let g = SsdConfig::small().geometry;
        let plan = FaultPlan::none().fail_page(&g, PageAddr::zero());
        assert!(plan.fails(&g, PageAddr::zero()));
        let other = PageAddr {
            block: 1,
            ..PageAddr::zero()
        };
        assert!(!plan.fails(&g, other));
        assert_eq!(plan.len(), 1);
    }

    #[test]
    fn random_plan_hits_roughly_the_rate() {
        let g = SsdConfig::small().geometry;
        let plan = FaultPlan::random(&g, 0.1, 42);
        let total = g.total_pages() as f64;
        let frac = plan.len() as f64 / total;
        assert!((frac - 0.1).abs() < 0.03, "frac = {frac}");
    }

    #[test]
    fn random_plan_is_deterministic() {
        let g = SsdConfig::small().geometry;
        assert_eq!(
            FaultPlan::random(&g, 0.05, 7),
            FaultPlan::random(&g, 0.05, 7)
        );
        assert_ne!(
            FaultPlan::random(&g, 0.05, 7),
            FaultPlan::random(&g, 0.05, 8)
        );
    }

    #[test]
    fn zero_rate_is_empty() {
        let g = SsdConfig::small().geometry;
        assert!(FaultPlan::random(&g, 0.0, 1).is_empty());
        assert!(FaultPlan::none().is_empty());
    }

    #[test]
    #[should_panic(expected = "rate")]
    fn bad_rate_panics() {
        let g = SsdConfig::small().geometry;
        let _ = FaultPlan::random(&g, 1.5, 0);
    }

    #[test]
    #[should_panic(expected = "rate")]
    fn bad_transient_rate_panics() {
        let _ = FaultPlan::none().transient(-0.5, 0);
    }

    #[test]
    fn armed_zero_rate_transient_is_not_empty() {
        // The bench's fault-overhead check relies on a rate-0 transient
        // layer forcing reads through the layered outcome path.
        let plan = FaultPlan::none().transient(0.0, 1);
        assert!(!plan.is_empty());
        let g = SsdConfig::small().geometry;
        assert_eq!(plan.outcome(&g, PageAddr::zero(), 0, 0), FaultOutcome::Ok);
    }

    #[test]
    fn transient_pages_recover_within_the_bound() {
        let g = SsdConfig::small().geometry;
        let plan = FaultPlan::none()
            .transient(0.3, 11)
            .transient_max_failures(3);
        let mut affected = 0u64;
        for idx in 0..g.total_pages() {
            let addr = g.page_from_index(idx);
            let mut fails = 0u32;
            for attempt in 0.. {
                match plan.outcome(&g, addr, attempt, 0) {
                    FaultOutcome::Transient => fails += 1,
                    FaultOutcome::Ok => break,
                    FaultOutcome::Permanent => panic!("transient-only plan"),
                }
                assert!(attempt < 8, "page {idx} never recovered");
            }
            // Outcomes are monotone: once a page recovers it stays
            // recovered (attempt >= fail count), and the fail count is
            // bounded by the configured maximum.
            assert!(fails <= 3, "page {idx} failed {fails} attempts");
            if fails > 0 {
                affected += 1;
                assert_eq!(plan.outcome(&g, addr, fails, 0), FaultOutcome::Ok);
                assert_eq!(plan.outcome(&g, addr, fails + 7, 0), FaultOutcome::Ok);
            }
        }
        let frac = affected as f64 / g.total_pages() as f64;
        assert!((frac - 0.3).abs() < 0.05, "frac = {frac}");
        // `fails` (the pre-retry probe) does not report transient pages.
        assert!(!plan.fails(&g, PageAddr::zero()) || !plan.is_empty());
    }

    #[test]
    fn wear_threshold_trips_permanent() {
        let g = SsdConfig::small().geometry;
        let plan = FaultPlan::none().wear_threshold(5);
        let addr = PageAddr::zero();
        assert_eq!(plan.outcome(&g, addr, 0, 4), FaultOutcome::Ok);
        assert_eq!(plan.outcome(&g, addr, 0, 5), FaultOutcome::Permanent);
        assert_eq!(plan.outcome(&g, addr, 3, 9), FaultOutcome::Permanent);
        assert!(!plan.is_empty());
    }

    #[test]
    fn outage_domains_fail_whole_units() {
        let g = SsdConfig::small().geometry;
        let plan = FaultPlan::none().dead_channel(1).dead_chip(2, 1);
        let on_dead_channel = PageAddr {
            channel: 1,
            ..PageAddr::zero()
        };
        let on_dead_chip = PageAddr {
            channel: 2,
            chip: 1,
            ..PageAddr::zero()
        };
        let healthy = PageAddr {
            channel: 2,
            ..PageAddr::zero()
        };
        for attempt in 0..4 {
            assert_eq!(
                plan.outcome(&g, on_dead_channel, attempt, 0),
                FaultOutcome::Permanent
            );
            assert_eq!(
                plan.outcome(&g, on_dead_chip, attempt, 0),
                FaultOutcome::Permanent
            );
            assert_eq!(plan.outcome(&g, healthy, attempt, 0), FaultOutcome::Ok);
        }
        assert!(plan.in_outage_domain(on_dead_channel));
        assert!(plan.in_outage_domain(on_dead_chip));
        assert!(!plan.in_outage_domain(healthy));
        // Outage faults are visible to the pre-retry probe but are not
        // "permanent pages" (there is no page-granular remap source).
        assert!(plan.fails(&g, on_dead_channel));
        assert_eq!(plan.len(), 0);
    }

    #[test]
    fn layers_serialize_roundtrip() {
        let g = SsdConfig::small().geometry;
        let plan = FaultPlan::random(&g, 0.02, 3)
            .transient(0.1, 9)
            .transient_max_failures(2)
            .wear_threshold(100)
            .dead_channel(3)
            .dead_chip(0, 1);
        let json = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(plan, back);
    }

    #[test]
    fn outage_summary_counts_domains_once() {
        let g = SsdConfig::small().geometry;
        let pages_per_chip = (g.planes_per_chip * g.blocks_per_plane * g.pages_per_block) as u64;
        // A dead chip inside a dead channel must not double count.
        let plan = FaultPlan::none()
            .dead_channel(1)
            .dead_chip(1, 0)
            .dead_chip(2, 1);
        let s = plan.outage_summary(&g);
        assert_eq!(s.dead_channels, vec![1]);
        assert_eq!(s.dead_chips, vec![(1, 0), (2, 1)]);
        assert_eq!(
            s.outage_pages,
            g.chips_per_channel as u64 * pages_per_chip + pages_per_chip
        );
        assert!(!s.device_dead());
        assert!(s.outage_fraction() > 0.0 && s.outage_fraction() < 1.0);
    }

    #[test]
    fn dead_device_covers_every_page() {
        let g = SsdConfig::small().geometry;
        let plan = FaultPlan::dead_device(&g);
        let s = plan.outage_summary(&g);
        assert!(s.device_dead());
        assert_eq!(s.outage_pages, g.total_pages());
        assert_eq!(s.outage_fraction(), 1.0);
        assert_eq!(s.dead_channels.len(), g.channels);
        // Every address is in an outage domain.
        let addr = PageAddr {
            channel: g.channels - 1,
            chip: 0,
            plane: 0,
            block: 0,
            page: 0,
        };
        assert!(plan.in_outage_domain(addr));
    }

    #[test]
    fn read_fault_stats_merge_is_exact() {
        let mut a = ReadFaultStats::new();
        a.on_retry(0);
        a.on_retry(0);
        a.on_retry(1);
        a.recovered = 2;
        let mut b = ReadFaultStats::new();
        b.on_retry(0);
        b.on_retry(2);
        b.remappable = 1;
        b.lost = 3;
        a.merge(&b);
        assert_eq!(a.retries_by_round, vec![3, 1, 1]);
        assert_eq!(a.total_retries(), 5);
        assert_eq!((a.recovered, a.remappable, a.lost), (2, 1, 3));
    }
}
