//! Fault injection: uncorrectable read errors.
//!
//! Real NAND wears out; reads occasionally fail ECC correction. The
//! functional simulator can inject deterministic read faults so the
//! engine's degradation behaviour is testable: intelligent queries
//! already tolerate approximation (the whole premise of the query cache,
//! §4.6), so a scan that skips a handful of unreadable features degrades
//! recall marginally instead of failing the query.

use crate::geometry::{PageAddr, SsdGeometry};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// A deterministic set of pages whose reads fail ECC.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultPlan {
    failing: HashSet<u64>,
}

impl FaultPlan {
    /// No faults.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Marks a specific page as unreadable.
    pub fn fail_page(mut self, geometry: &SsdGeometry, addr: PageAddr) -> Self {
        self.failing.insert(geometry.page_index(addr));
        self
    }

    /// Fails an (approximately) `rate` fraction of all pages,
    /// deterministically derived from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is outside `[0, 1]`.
    pub fn random(geometry: &SsdGeometry, rate: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate must be in [0, 1]");
        let mut failing = HashSet::new();
        let threshold = (rate * u64::MAX as f64) as u64;
        for idx in 0..geometry.total_pages() {
            // splitmix64 hash of (seed, idx).
            let mut z = seed ^ idx.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            if z < threshold {
                failing.insert(idx);
            }
        }
        FaultPlan { failing }
    }

    /// Whether a page read fails.
    pub fn fails(&self, geometry: &SsdGeometry, addr: PageAddr) -> bool {
        self.failing.contains(&geometry.page_index(addr))
    }

    /// Number of failing pages.
    pub fn len(&self) -> usize {
        self.failing.len()
    }

    /// True when no faults are planned.
    pub fn is_empty(&self) -> bool {
        self.failing.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SsdConfig;

    #[test]
    fn explicit_page_fails() {
        let g = SsdConfig::small().geometry;
        let plan = FaultPlan::none().fail_page(&g, PageAddr::zero());
        assert!(plan.fails(&g, PageAddr::zero()));
        let other = PageAddr {
            block: 1,
            ..PageAddr::zero()
        };
        assert!(!plan.fails(&g, other));
        assert_eq!(plan.len(), 1);
    }

    #[test]
    fn random_plan_hits_roughly_the_rate() {
        let g = SsdConfig::small().geometry;
        let plan = FaultPlan::random(&g, 0.1, 42);
        let total = g.total_pages() as f64;
        let frac = plan.len() as f64 / total;
        assert!((frac - 0.1).abs() < 0.03, "frac = {frac}");
    }

    #[test]
    fn random_plan_is_deterministic() {
        let g = SsdConfig::small().geometry;
        assert_eq!(
            FaultPlan::random(&g, 0.05, 7),
            FaultPlan::random(&g, 0.05, 7)
        );
        assert_ne!(
            FaultPlan::random(&g, 0.05, 7),
            FaultPlan::random(&g, 0.05, 8)
        );
    }

    #[test]
    fn zero_rate_is_empty() {
        let g = SsdConfig::small().geometry;
        assert!(FaultPlan::random(&g, 0.0, 1).is_empty());
        assert!(FaultPlan::none().is_empty());
    }

    #[test]
    #[should_panic(expected = "rate")]
    fn bad_rate_panics() {
        let g = SsdConfig::small().geometry;
        let _ = FaultPlan::random(&g, 1.5, 0);
    }
}
