//! Flash geometry: the channel → chip → plane → block → page hierarchy.
//!
//! Modern SSDs reach terabyte capacities by organizing dense NAND into this
//! hierarchy (§2.2): the paper's evaluated drive has 32 channels, 4 chips
//! per channel, 8 planes per chip, 512 blocks per plane and 128 pages of
//! 16 KB per block.

use crate::{FlashError, Result};
use serde::{Deserialize, Serialize};

/// Physical organization of an SSD's flash.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SsdGeometry {
    /// Number of flash channels (16–32 in modern drives).
    pub channels: usize,
    /// Flash chips sharing each channel bus (4–8).
    pub chips_per_channel: usize,
    /// Planes per chip (2–8); each plane has its own page buffer.
    pub planes_per_chip: usize,
    /// Blocks per plane.
    pub blocks_per_plane: usize,
    /// Pages per block (flash is read at page granularity).
    pub pages_per_block: usize,
    /// Page size in bytes.
    pub page_bytes: usize,
}

impl SsdGeometry {
    /// The paper's configuration (§6.1).
    pub fn paper_default() -> Self {
        SsdGeometry {
            channels: 32,
            chips_per_channel: 4,
            planes_per_chip: 8,
            blocks_per_plane: 512,
            pages_per_block: 128,
            page_bytes: 16 * 1024,
        }
    }

    /// Total number of chips in the drive.
    pub fn total_chips(&self) -> usize {
        self.channels * self.chips_per_channel
    }

    /// Total number of planes in the drive.
    pub fn total_planes(&self) -> usize {
        self.total_chips() * self.planes_per_chip
    }

    /// Planes per channel.
    pub fn planes_per_channel(&self) -> usize {
        self.chips_per_channel * self.planes_per_chip
    }

    /// Pages per plane.
    pub fn pages_per_plane(&self) -> usize {
        self.blocks_per_plane * self.pages_per_block
    }

    /// Total page count.
    pub fn total_pages(&self) -> u64 {
        self.total_planes() as u64 * self.pages_per_plane() as u64
    }

    /// Raw capacity in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.total_pages() * self.page_bytes as u64
    }

    /// Pages needed to hold `bytes` bytes.
    pub fn pages_for_bytes(&self, bytes: u64) -> u64 {
        bytes.div_ceil(self.page_bytes as u64)
    }

    /// Validates that an address lies inside this geometry.
    ///
    /// # Errors
    ///
    /// Returns [`FlashError::AddressOutOfRange`] if any coordinate exceeds
    /// its bound.
    pub fn check(&self, addr: PageAddr) -> Result<()> {
        if addr.channel < self.channels
            && addr.chip < self.chips_per_channel
            && addr.plane < self.planes_per_chip
            && addr.block < self.blocks_per_plane
            && addr.page < self.pages_per_block
        {
            Ok(())
        } else {
            Err(FlashError::AddressOutOfRange(format!(
                "{addr:?} vs geometry {self:?}"
            )))
        }
    }

    /// Linearizes a page address (used as a dense index by the functional
    /// array). Inverse of [`SsdGeometry::page_from_index`].
    pub fn page_index(&self, addr: PageAddr) -> u64 {
        let planes = ((addr.channel * self.chips_per_channel + addr.chip) * self.planes_per_chip
            + addr.plane) as u64;
        planes * self.pages_per_plane() as u64
            + (addr.block * self.pages_per_block + addr.page) as u64
    }

    /// Reconstructs a page address from a dense index.
    pub fn page_from_index(&self, mut idx: u64) -> PageAddr {
        let pp = self.pages_per_plane() as u64;
        let plane_lin = (idx / pp) as usize;
        idx %= pp;
        let block = (idx as usize) / self.pages_per_block;
        let page = (idx as usize) % self.pages_per_block;
        let plane = plane_lin % self.planes_per_chip;
        let chip_lin = plane_lin / self.planes_per_chip;
        let chip = chip_lin % self.chips_per_channel;
        let channel = chip_lin / self.chips_per_channel;
        PageAddr {
            channel,
            chip,
            plane,
            block,
            page,
        }
    }
}

/// A physical flash page address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PageAddr {
    /// Channel index.
    pub channel: usize,
    /// Chip index within the channel.
    pub chip: usize,
    /// Plane index within the chip.
    pub plane: usize,
    /// Block index within the plane.
    pub block: usize,
    /// Page index within the block.
    pub page: usize,
}

impl PageAddr {
    /// Address of the first page of the drive.
    pub fn zero() -> Self {
        PageAddr {
            channel: 0,
            chip: 0,
            plane: 0,
            block: 0,
            page: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_multiply_out() {
        let g = SsdGeometry::paper_default();
        assert_eq!(g.total_chips(), 128);
        assert_eq!(g.total_planes(), 1024);
        assert_eq!(g.planes_per_channel(), 32);
        assert_eq!(g.pages_per_plane(), 512 * 128);
        assert_eq!(g.total_pages(), 1024 * 512 * 128);
    }

    #[test]
    fn pages_for_bytes_rounds_up() {
        let g = SsdGeometry::paper_default();
        assert_eq!(g.pages_for_bytes(1), 1);
        assert_eq!(g.pages_for_bytes(16 * 1024), 1);
        assert_eq!(g.pages_for_bytes(16 * 1024 + 1), 2);
        assert_eq!(g.pages_for_bytes(0), 0);
    }

    #[test]
    fn check_accepts_valid_rejects_invalid() {
        let g = SsdGeometry::paper_default();
        assert!(g.check(PageAddr::zero()).is_ok());
        let last = PageAddr {
            channel: 31,
            chip: 3,
            plane: 7,
            block: 511,
            page: 127,
        };
        assert!(g.check(last).is_ok());
        let bad = PageAddr {
            channel: 32,
            ..PageAddr::zero()
        };
        assert!(g.check(bad).is_err());
    }

    #[test]
    fn page_index_roundtrips() {
        let g = SsdGeometry {
            channels: 3,
            chips_per_channel: 2,
            planes_per_chip: 2,
            blocks_per_plane: 4,
            pages_per_block: 8,
            page_bytes: 4096,
        };
        for idx in 0..g.total_pages() {
            let addr = g.page_from_index(idx);
            assert!(g.check(addr).is_ok());
            assert_eq!(g.page_index(addr), idx);
        }
    }

    #[test]
    fn page_index_zero_is_origin() {
        let g = SsdGeometry::paper_default();
        assert_eq!(g.page_index(PageAddr::zero()), 0);
        assert_eq!(g.page_from_index(0), PageAddr::zero());
    }
}
