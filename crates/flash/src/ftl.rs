//! Block-level flash translation layer.
//!
//! DeepStore "employs a regular block-level FTL, and uses the FTL to get a
//! starting physical address for the database" (§4.4): feature databases
//! are written append-only and striped, so the FTL's job is block
//! allocation, logical→physical translation, greedy garbage collection of
//! invalidated blocks, and wear-leveling-aware free-block selection.

use crate::array::FlashArray;
use crate::geometry::{PageAddr, SsdGeometry};
use crate::{FlashError, Result};
use std::collections::{BTreeMap, HashMap, VecDeque};

/// A logical block address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LogicalBlock(pub u64);

/// A physical block location: (channel, chip, plane, block).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PhysicalBlock {
    /// Channel index.
    pub channel: usize,
    /// Chip index within the channel.
    pub chip: usize,
    /// Plane index within the chip.
    pub plane: usize,
    /// Block index within the plane.
    pub block: usize,
}

impl PhysicalBlock {
    /// Address of a page inside this block.
    pub fn page(self, page: usize) -> PageAddr {
        PageAddr {
            channel: self.channel,
            chip: self.chip,
            plane: self.plane,
            block: self.block,
            page,
        }
    }
}

/// Block-level FTL with greedy GC and wear-aware allocation.
#[derive(Debug)]
pub struct BlockFtl {
    geometry: SsdGeometry,
    /// Logical → physical block map.
    map: BTreeMap<LogicalBlock, PhysicalBlock>,
    /// Free physical blocks, ordered by erase count (wear leveling): we pop
    /// the least-worn block first.
    free: VecDeque<PhysicalBlock>,
    /// Erase count per physical block (mirrors the array's counters so
    /// allocation does not need array access).
    wear: HashMap<PhysicalBlock, u64>,
    /// Blocks whose mapping was dropped but which have not been erased yet.
    invalidated: Vec<PhysicalBlock>,
    next_logical: u64,
    gc_runs: u64,
}

impl BlockFtl {
    /// Creates an FTL managing every block of the geometry.
    ///
    /// Free blocks are ordered channel-major so that consecutive
    /// allocations stripe across channels, then chips, then planes — the
    /// layout §4.4 relies on for internal parallelism.
    pub fn new(geometry: SsdGeometry) -> Self {
        let mut free = VecDeque::new();
        // Stripe: iterate block index outermost so block 0 of every plane
        // comes before block 1 of any plane.
        for block in 0..geometry.blocks_per_plane {
            for plane in 0..geometry.planes_per_chip {
                for chip in 0..geometry.chips_per_channel {
                    for channel in 0..geometry.channels {
                        free.push_back(PhysicalBlock {
                            channel,
                            chip,
                            plane,
                            block,
                        });
                    }
                }
            }
        }
        BlockFtl {
            geometry,
            map: BTreeMap::new(),
            free,
            wear: HashMap::new(),
            invalidated: Vec::new(),
            next_logical: 0,
            gc_runs: 0,
        }
    }

    /// The managed geometry.
    pub fn geometry(&self) -> &SsdGeometry {
        &self.geometry
    }

    /// Number of free (allocatable) blocks.
    pub fn free_blocks(&self) -> usize {
        self.free.len()
    }

    /// Number of garbage-collection passes run.
    pub fn gc_runs(&self) -> u64 {
        self.gc_runs
    }

    /// Allocates the next logical block, mapping it to the least-worn free
    /// physical block (continuing the channel stripe).
    ///
    /// # Errors
    ///
    /// Returns [`FlashError::OutOfSpace`] when no free block exists even
    /// after garbage collection.
    pub fn allocate(&mut self, array: &mut FlashArray) -> Result<(LogicalBlock, PhysicalBlock)> {
        if self.free.is_empty() {
            self.collect_garbage(array)?;
        }
        let phys = self.free.pop_front().ok_or(FlashError::OutOfSpace)?;
        let logical = LogicalBlock(self.next_logical);
        self.next_logical += 1;
        self.map.insert(logical, phys);
        Ok((logical, phys))
    }

    /// Translates a logical block to its physical location.
    ///
    /// # Errors
    ///
    /// Returns [`FlashError::AddressOutOfRange`] for unmapped blocks.
    pub fn translate(&self, logical: LogicalBlock) -> Result<PhysicalBlock> {
        self.map
            .get(&logical)
            .copied()
            .ok_or_else(|| FlashError::AddressOutOfRange(format!("unmapped {logical:?}")))
    }

    /// Drops the mapping for a logical block; its physical block becomes
    /// garbage to be reclaimed by [`BlockFtl::collect_garbage`].
    ///
    /// # Errors
    ///
    /// Returns [`FlashError::AddressOutOfRange`] for unmapped blocks.
    pub fn invalidate(&mut self, logical: LogicalBlock) -> Result<()> {
        let phys = self
            .map
            .remove(&logical)
            .ok_or_else(|| FlashError::AddressOutOfRange(format!("unmapped {logical:?}")))?;
        self.invalidated.push(phys);
        Ok(())
    }

    /// Greedy garbage collection: erase all invalidated blocks and return
    /// them to the free list in wear order (least-worn first).
    ///
    /// # Errors
    ///
    /// Returns [`FlashError::OutOfSpace`] if there was nothing to reclaim.
    pub fn collect_garbage(&mut self, array: &mut FlashArray) -> Result<usize> {
        if self.invalidated.is_empty() {
            return Err(FlashError::OutOfSpace);
        }
        let reclaimed = self.invalidated.len();
        for phys in self.invalidated.drain(..) {
            array.erase_block(phys.page(0))?;
            *self.wear.entry(phys).or_insert(0) += 1;
        }
        self.gc_runs += 1;
        array.metrics().on_gc(reclaimed as u64);
        // Re-sort the free list by wear so the least-worn blocks are used
        // first (wear leveling).
        let mut rebuilt: Vec<PhysicalBlock> = self.free.drain(..).collect();
        let worn_free: Vec<PhysicalBlock> = self
            .wear
            .keys()
            .copied()
            .filter(|b| !rebuilt.contains(b) && !self.map.values().any(|m| m == b))
            .collect();
        rebuilt.extend(worn_free);
        rebuilt.sort_by_key(|b| (self.wear.get(b).copied().unwrap_or(0), *b));
        self.free = rebuilt.into();
        Ok(reclaimed)
    }

    /// Erase count recorded for a physical block.
    pub fn wear_of(&self, block: PhysicalBlock) -> u64 {
        self.wear.get(&block).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SsdConfig;

    fn setup() -> (BlockFtl, FlashArray) {
        let g = SsdConfig::small().geometry;
        (BlockFtl::new(g), FlashArray::new(g))
    }

    #[test]
    fn allocation_stripes_across_channels_first() {
        let (mut ftl, mut array) = setup();
        let g = *ftl.geometry();
        let mut channels = Vec::new();
        for _ in 0..g.channels {
            let (_, phys) = ftl.allocate(&mut array).unwrap();
            channels.push(phys.channel);
        }
        // First `channels` allocations land on distinct channels.
        let mut sorted = channels.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), g.channels);
    }

    #[test]
    fn allocation_then_chips_within_channel() {
        let (mut ftl, mut array) = setup();
        let g = *ftl.geometry();
        let mut allocs = Vec::new();
        for _ in 0..(g.channels * g.chips_per_channel) {
            allocs.push(ftl.allocate(&mut array).unwrap().1);
        }
        // After one full channel round, the next round uses chip 1.
        assert_eq!(allocs[0].chip, 0);
        assert_eq!(allocs[g.channels].chip, 1);
    }

    #[test]
    fn translate_roundtrips() {
        let (mut ftl, mut array) = setup();
        let (l, p) = ftl.allocate(&mut array).unwrap();
        assert_eq!(ftl.translate(l).unwrap(), p);
        assert!(ftl.translate(LogicalBlock(999)).is_err());
    }

    #[test]
    fn exhaustion_reports_out_of_space() {
        let (mut ftl, mut array) = setup();
        let total = ftl.free_blocks();
        for _ in 0..total {
            ftl.allocate(&mut array).unwrap();
        }
        assert!(matches!(
            ftl.allocate(&mut array),
            Err(FlashError::OutOfSpace)
        ));
    }

    #[test]
    fn gc_reclaims_invalidated_blocks() {
        let (mut ftl, mut array) = setup();
        let total = ftl.free_blocks();
        let mut logicals = Vec::new();
        for _ in 0..total {
            logicals.push(ftl.allocate(&mut array).unwrap().0);
        }
        // Invalidate half, then allocation succeeds again via GC.
        for l in logicals.iter().take(total / 2) {
            ftl.invalidate(*l).unwrap();
        }
        let (l, _) = ftl.allocate(&mut array).unwrap();
        assert!(ftl.translate(l).is_ok());
        assert_eq!(ftl.gc_runs(), 1);
    }

    #[test]
    fn gc_erases_data() {
        let (mut ftl, mut array) = setup();
        let (l, p) = ftl.allocate(&mut array).unwrap();
        array.program(p.page(0), b"doomed").unwrap();
        ftl.invalidate(l).unwrap();
        ftl.collect_garbage(&mut array).unwrap();
        assert!(!array.is_programmed(p.page(0)));
        assert_eq!(ftl.wear_of(p), 1);
    }

    #[test]
    fn wear_leveling_prefers_fresh_blocks() {
        let (mut ftl, mut array) = setup();
        // Allocate and churn one block several times.
        let (l, p0) = ftl.allocate(&mut array).unwrap();
        ftl.invalidate(l).unwrap();
        ftl.collect_garbage(&mut array).unwrap();
        // Next allocation should NOT reuse the worn block while unworn
        // blocks remain.
        let (_, p1) = ftl.allocate(&mut array).unwrap();
        assert_ne!(p0, p1);
        assert_eq!(ftl.wear_of(p1), 0);
    }

    #[test]
    fn gc_with_nothing_to_reclaim_is_error() {
        let (mut ftl, mut array) = setup();
        assert!(matches!(
            ftl.collect_garbage(&mut array),
            Err(FlashError::OutOfSpace)
        ));
    }
}
