//! Block-level flash translation layer.
//!
//! DeepStore "employs a regular block-level FTL, and uses the FTL to get a
//! starting physical address for the database" (§4.4): feature databases
//! are written append-only and striped, so the FTL's job is block
//! allocation, logical→physical translation, greedy garbage collection of
//! invalidated blocks, and wear-leveling-aware free-block selection.

use crate::array::FlashArray;
use crate::geometry::{PageAddr, SsdGeometry};
use crate::{FlashError, Result};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};

/// A logical block address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct LogicalBlock(pub u64);

/// A physical block location: (channel, chip, plane, block).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PhysicalBlock {
    /// Channel index.
    pub channel: usize,
    /// Chip index within the channel.
    pub chip: usize,
    /// Plane index within the chip.
    pub plane: usize,
    /// Block index within the plane.
    pub block: usize,
}

impl PhysicalBlock {
    /// Address of a page inside this block.
    pub fn page(self, page: usize) -> PageAddr {
        PageAddr {
            channel: self.channel,
            chip: self.chip,
            plane: self.plane,
            block: self.block,
            page,
        }
    }
}

/// Serializable snapshot of an FTL's full state, for the persistent
/// image manifest. Map-like fields are flat `Vec`s of pairs (sorted for
/// canonical encoding); the free list is a plain `Vec` in *allocation
/// order* — that order is the wear-leveling policy's output and must
/// round-trip exactly for reopened images to allocate identically.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FtlSnapshot {
    /// Logical→physical map as sorted `(logical, physical)` pairs.
    pub map: Vec<(u64, PhysicalBlock)>,
    /// Free blocks in allocation (pop) order.
    pub free: Vec<PhysicalBlock>,
    /// Per-block erase counts as sorted `(block, count)` pairs.
    pub wear: Vec<(PhysicalBlock, u64)>,
    /// Invalidated-but-not-yet-erased blocks, in invalidation order.
    pub invalidated: Vec<PhysicalBlock>,
    /// Retired (out-of-service) blocks, ascending.
    pub retired: Vec<PhysicalBlock>,
    /// Next logical block id to hand out.
    pub next_logical: u64,
    /// GC passes run so far.
    pub gc_runs: u64,
}

/// Block-level FTL with greedy GC and wear-aware allocation.
#[derive(Debug)]
pub struct BlockFtl {
    geometry: SsdGeometry,
    /// Logical → physical block map.
    map: BTreeMap<LogicalBlock, PhysicalBlock>,
    /// Free physical blocks, ordered by erase count (wear leveling): we pop
    /// the least-worn block first.
    free: VecDeque<PhysicalBlock>,
    /// Erase count per physical block (mirrors the array's counters so
    /// allocation does not need array access).
    wear: HashMap<PhysicalBlock, u64>,
    /// Blocks whose mapping was dropped but which have not been erased yet.
    invalidated: Vec<PhysicalBlock>,
    /// Bad blocks taken out of service: never allocated again, never
    /// returned to the free list by GC.
    retired: BTreeSet<PhysicalBlock>,
    next_logical: u64,
    gc_runs: u64,
}

impl BlockFtl {
    /// Creates an FTL managing every block of the geometry.
    ///
    /// Free blocks are ordered channel-major so that consecutive
    /// allocations stripe across channels, then chips, then planes — the
    /// layout §4.4 relies on for internal parallelism.
    pub fn new(geometry: SsdGeometry) -> Self {
        let mut free = VecDeque::new();
        // Stripe: iterate block index outermost so block 0 of every plane
        // comes before block 1 of any plane.
        for block in 0..geometry.blocks_per_plane {
            for plane in 0..geometry.planes_per_chip {
                for chip in 0..geometry.chips_per_channel {
                    for channel in 0..geometry.channels {
                        free.push_back(PhysicalBlock {
                            channel,
                            chip,
                            plane,
                            block,
                        });
                    }
                }
            }
        }
        BlockFtl {
            geometry,
            map: BTreeMap::new(),
            free,
            wear: HashMap::new(),
            invalidated: Vec::new(),
            retired: BTreeSet::new(),
            next_logical: 0,
            gc_runs: 0,
        }
    }

    /// The managed geometry.
    pub fn geometry(&self) -> &SsdGeometry {
        &self.geometry
    }

    /// Number of free (allocatable) blocks.
    pub fn free_blocks(&self) -> usize {
        self.free.len()
    }

    /// Number of garbage-collection passes run.
    pub fn gc_runs(&self) -> u64 {
        self.gc_runs
    }

    /// Allocates the next logical block, mapping it to the least-worn free
    /// physical block (continuing the channel stripe).
    ///
    /// # Errors
    ///
    /// Returns [`FlashError::OutOfSpace`] when no free block exists even
    /// after garbage collection.
    pub fn allocate(&mut self, array: &mut FlashArray) -> Result<(LogicalBlock, PhysicalBlock)> {
        if self.free.is_empty() {
            self.collect_garbage(array)?;
        }
        // Retired blocks can reach the free list only through pre-existing
        // state (a block retired while free); skip them here as the second
        // line of defence.
        let phys = loop {
            let candidate = self.free.pop_front().ok_or(FlashError::OutOfSpace)?;
            if !self.retired.contains(&candidate) {
                break candidate;
            }
        };
        let logical = LogicalBlock(self.next_logical);
        self.next_logical += 1;
        self.map.insert(logical, phys);
        Ok((logical, phys))
    }

    /// Translates a logical block to its physical location.
    ///
    /// # Errors
    ///
    /// Returns [`FlashError::AddressOutOfRange`] for unmapped blocks.
    pub fn translate(&self, logical: LogicalBlock) -> Result<PhysicalBlock> {
        self.map
            .get(&logical)
            .copied()
            .ok_or_else(|| FlashError::AddressOutOfRange(format!("unmapped {logical:?}")))
    }

    /// Drops the mapping for a logical block; its physical block becomes
    /// garbage to be reclaimed by [`BlockFtl::collect_garbage`].
    ///
    /// # Errors
    ///
    /// Returns [`FlashError::AddressOutOfRange`] for unmapped blocks.
    pub fn invalidate(&mut self, logical: LogicalBlock) -> Result<()> {
        let phys = self
            .map
            .remove(&logical)
            .ok_or_else(|| FlashError::AddressOutOfRange(format!("unmapped {logical:?}")))?;
        self.invalidated.push(phys);
        Ok(())
    }

    /// Greedy garbage collection: erase all invalidated blocks and return
    /// them to the free list in wear order (least-worn first).
    ///
    /// # Errors
    ///
    /// Returns [`FlashError::OutOfSpace`] if there was nothing to reclaim.
    pub fn collect_garbage(&mut self, array: &mut FlashArray) -> Result<usize> {
        if self.invalidated.is_empty() {
            return Err(FlashError::OutOfSpace);
        }
        let reclaimed = self.invalidated.len();
        for phys in self.invalidated.drain(..) {
            array.erase_block(phys.page(0))?;
            *self.wear.entry(phys).or_insert(0) += 1;
        }
        self.gc_runs += 1;
        array.metrics().on_gc(reclaimed as u64);
        // Re-sort the free list by wear so the least-worn blocks are used
        // first (wear leveling).
        let mut rebuilt: Vec<PhysicalBlock> = self.free.drain(..).collect();
        let worn_free: Vec<PhysicalBlock> = self
            .wear
            .keys()
            .copied()
            .filter(|b| !rebuilt.contains(b) && !self.map.values().any(|m| m == b))
            .collect();
        rebuilt.extend(worn_free);
        // Retired blocks must never re-enter circulation, whichever path
        // put them in the candidate set (pre-retirement free-list entries
        // or the worn-block sweep above).
        rebuilt.retain(|b| !self.retired.contains(b));
        rebuilt.sort_by_key(|b| (self.wear.get(b).copied().unwrap_or(0), *b));
        self.free = rebuilt.into();
        Ok(reclaimed)
    }

    /// Retires a bad block: it is removed from the free list, dropped
    /// from any logical mapping, and never handed out by
    /// [`BlockFtl::allocate`] or returned by GC again.
    ///
    /// Returns the logical block that mapped to it, if any (the caller
    /// remaps that logical block's data elsewhere).
    pub fn retire(&mut self, block: PhysicalBlock) -> Option<LogicalBlock> {
        self.retired.insert(block);
        self.free.retain(|b| *b != block);
        self.invalidated.retain(|b| *b != block);
        let logical = self.map.iter().find(|(_, p)| **p == block).map(|(l, _)| *l);
        if let Some(l) = logical {
            self.map.remove(&l);
        }
        logical
    }

    /// Number of blocks retired so far.
    pub fn retired_blocks(&self) -> usize {
        self.retired.len()
    }

    /// True if `block` has been retired.
    pub fn is_retired(&self, block: PhysicalBlock) -> bool {
        self.retired.contains(&block)
    }

    /// Erase count recorded for a physical block.
    pub fn wear_of(&self, block: PhysicalBlock) -> u64 {
        self.wear.get(&block).copied().unwrap_or(0)
    }

    /// Captures the FTL's full state for an image manifest.
    pub fn snapshot(&self) -> FtlSnapshot {
        let mut wear: Vec<(PhysicalBlock, u64)> = self
            .wear
            .iter()
            .map(|(&b, &c)| (b, c))
            .filter(|&(_, c)| c > 0)
            .collect();
        wear.sort_unstable();
        FtlSnapshot {
            map: self.map.iter().map(|(l, &p)| (l.0, p)).collect(),
            free: self.free.iter().copied().collect(),
            wear,
            invalidated: self.invalidated.clone(),
            retired: self.retired.iter().copied().collect(),
            next_logical: self.next_logical,
            gc_runs: self.gc_runs,
        }
    }

    /// Rebuilds an FTL from a snapshot (inverse of [`BlockFtl::snapshot`]).
    pub fn from_snapshot(geometry: SsdGeometry, snap: &FtlSnapshot) -> Self {
        BlockFtl {
            geometry,
            map: snap
                .map
                .iter()
                .map(|&(l, p)| (LogicalBlock(l), p))
                .collect(),
            free: snap.free.iter().copied().collect(),
            wear: snap.wear.iter().copied().collect(),
            invalidated: snap.invalidated.clone(),
            retired: snap.retired.iter().copied().collect(),
            next_logical: snap.next_logical,
            gc_runs: snap.gc_runs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SsdConfig;

    fn setup() -> (BlockFtl, FlashArray) {
        let g = SsdConfig::small().geometry;
        (BlockFtl::new(g), FlashArray::new(g))
    }

    #[test]
    fn allocation_stripes_across_channels_first() {
        let (mut ftl, mut array) = setup();
        let g = *ftl.geometry();
        let mut channels = Vec::new();
        for _ in 0..g.channels {
            let (_, phys) = ftl.allocate(&mut array).unwrap();
            channels.push(phys.channel);
        }
        // First `channels` allocations land on distinct channels.
        let mut sorted = channels.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), g.channels);
    }

    #[test]
    fn allocation_then_chips_within_channel() {
        let (mut ftl, mut array) = setup();
        let g = *ftl.geometry();
        let mut allocs = Vec::new();
        for _ in 0..(g.channels * g.chips_per_channel) {
            allocs.push(ftl.allocate(&mut array).unwrap().1);
        }
        // After one full channel round, the next round uses chip 1.
        assert_eq!(allocs[0].chip, 0);
        assert_eq!(allocs[g.channels].chip, 1);
    }

    #[test]
    fn translate_roundtrips() {
        let (mut ftl, mut array) = setup();
        let (l, p) = ftl.allocate(&mut array).unwrap();
        assert_eq!(ftl.translate(l).unwrap(), p);
        assert!(ftl.translate(LogicalBlock(999)).is_err());
    }

    #[test]
    fn exhaustion_reports_out_of_space() {
        let (mut ftl, mut array) = setup();
        let total = ftl.free_blocks();
        for _ in 0..total {
            ftl.allocate(&mut array).unwrap();
        }
        assert!(matches!(
            ftl.allocate(&mut array),
            Err(FlashError::OutOfSpace)
        ));
    }

    #[test]
    fn gc_reclaims_invalidated_blocks() {
        let (mut ftl, mut array) = setup();
        let total = ftl.free_blocks();
        let mut logicals = Vec::new();
        for _ in 0..total {
            logicals.push(ftl.allocate(&mut array).unwrap().0);
        }
        // Invalidate half, then allocation succeeds again via GC.
        for l in logicals.iter().take(total / 2) {
            ftl.invalidate(*l).unwrap();
        }
        let (l, _) = ftl.allocate(&mut array).unwrap();
        assert!(ftl.translate(l).is_ok());
        assert_eq!(ftl.gc_runs(), 1);
    }

    #[test]
    fn gc_erases_data() {
        let (mut ftl, mut array) = setup();
        let (l, p) = ftl.allocate(&mut array).unwrap();
        array.program(p.page(0), b"doomed").unwrap();
        ftl.invalidate(l).unwrap();
        ftl.collect_garbage(&mut array).unwrap();
        assert!(!array.is_programmed(p.page(0)));
        assert_eq!(ftl.wear_of(p), 1);
    }

    #[test]
    fn wear_leveling_prefers_fresh_blocks() {
        let (mut ftl, mut array) = setup();
        // Allocate and churn one block several times.
        let (l, p0) = ftl.allocate(&mut array).unwrap();
        ftl.invalidate(l).unwrap();
        ftl.collect_garbage(&mut array).unwrap();
        // Next allocation should NOT reuse the worn block while unworn
        // blocks remain.
        let (_, p1) = ftl.allocate(&mut array).unwrap();
        assert_ne!(p0, p1);
        assert_eq!(ftl.wear_of(p1), 0);
    }

    #[test]
    fn gc_with_nothing_to_reclaim_is_error() {
        let (mut ftl, mut array) = setup();
        assert!(matches!(
            ftl.collect_garbage(&mut array),
            Err(FlashError::OutOfSpace)
        ));
    }

    #[test]
    fn retired_block_is_never_allocated_again() {
        let (mut ftl, mut array) = setup();
        let (l, bad) = ftl.allocate(&mut array).unwrap();
        assert_eq!(ftl.retire(bad), Some(l));
        assert!(ftl.is_retired(bad));
        assert_eq!(ftl.retired_blocks(), 1);
        assert!(ftl.translate(l).is_err(), "retirement drops the mapping");
        // Drain the entire drive: the retired block never reappears.
        let mut seen = Vec::new();
        while let Ok((_, p)) = ftl.allocate(&mut array) {
            assert_ne!(p, bad, "allocator handed out a retired block");
            seen.push(p);
        }
        let total = array.geometry().channels
            * array.geometry().chips_per_channel
            * array.geometry().planes_per_chip
            * array.geometry().blocks_per_plane;
        assert_eq!(seen.len(), total - 1);
    }

    #[test]
    fn retired_block_survives_gc_rebuild() {
        let (mut ftl, mut array) = setup();
        // Allocate everything, retire one mapped block, invalidate the
        // rest; GC's wear-ordered rebuild must not resurrect the retiree.
        let total = ftl.free_blocks();
        let mut logicals = Vec::new();
        for _ in 0..total {
            logicals.push(ftl.allocate(&mut array).unwrap());
        }
        let (bad_l, bad_p) = logicals[3];
        assert_eq!(ftl.retire(bad_p), Some(bad_l));
        for &(l, p) in &logicals {
            if p != bad_p {
                ftl.invalidate(l).unwrap();
            }
        }
        let reclaimed = ftl.collect_garbage(&mut array).unwrap();
        assert_eq!(reclaimed, total - 1);
        assert_eq!(ftl.gc_runs(), 1);
        assert_eq!(ftl.free_blocks(), total - 1);
        // Every allocatable block excludes the retiree, forever.
        for _ in 0..(total - 1) {
            let (_, p) = ftl.allocate(&mut array).unwrap();
            assert_ne!(p, bad_p);
        }
        assert!(matches!(
            ftl.allocate(&mut array),
            Err(FlashError::OutOfSpace)
        ));
    }

    #[test]
    fn retiring_a_free_block_removes_it_from_the_free_list() {
        let (mut ftl, mut array) = setup();
        let before = ftl.free_blocks();
        // Retire a block that is still on the free list.
        let victim = PhysicalBlock {
            channel: 0,
            chip: 0,
            plane: 0,
            block: 0,
        };
        assert_eq!(ftl.retire(victim), None);
        assert_eq!(ftl.free_blocks(), before - 1);
        let (_, p) = ftl.allocate(&mut array).unwrap();
        assert_ne!(p, victim);
    }

    #[test]
    fn snapshot_roundtrips_ftl_state_exactly() {
        let (mut ftl, mut array) = setup();
        let total = ftl.free_blocks();
        let mut logicals = Vec::new();
        for _ in 0..total {
            logicals.push(ftl.allocate(&mut array).unwrap());
        }
        let (bad_l, bad_p) = logicals[5];
        assert_eq!(ftl.retire(bad_p), Some(bad_l));
        for &(l, p) in logicals.iter().take(total / 2) {
            if p != bad_p {
                ftl.invalidate(l).unwrap();
            }
        }
        ftl.collect_garbage(&mut array).unwrap();
        // Leave a couple of blocks invalidated-but-unerased too.
        for &(l, p) in logicals.iter().skip(total / 2).take(2) {
            if p != bad_p {
                ftl.invalidate(l).unwrap();
            }
        }
        let snap = ftl.snapshot();
        let mut restored = BlockFtl::from_snapshot(*ftl.geometry(), &snap);
        assert_eq!(restored.snapshot(), snap);
        // The restored FTL allocates the *same* sequence of blocks as the
        // original (the free list's pop order round-trips).
        let mut a2 = array.clone();
        for _ in 0..restored.free_blocks().min(8) {
            let orig = ftl.allocate(&mut array).unwrap();
            let back = restored.allocate(&mut a2).unwrap();
            assert_eq!(orig, back);
        }
        // JSON round-trip through the manifest encoding is lossless.
        let json = serde_json::to_vec(&snap).unwrap();
        let decoded: FtlSnapshot = serde_json::from_slice(&json).unwrap();
        assert_eq!(decoded, snap);
    }

    #[test]
    fn gc_stats_stay_consistent_after_retirement() {
        let (mut ftl, mut array) = setup();
        let (l0, p0) = ftl.allocate(&mut array).unwrap();
        let (l1, _) = ftl.allocate(&mut array).unwrap();
        ftl.retire(p0);
        ftl.invalidate(l1).unwrap();
        ftl.collect_garbage(&mut array).unwrap();
        // The retired block was never erased by GC: its wear is untouched
        // and the reclaim count only covers the invalidated block.
        assert_eq!(ftl.wear_of(p0), 0);
        assert_eq!(ftl.gc_runs(), 1);
        #[cfg(feature = "obs")]
        {
            assert_eq!(array.metrics().gc_runs(), 1);
            assert_eq!(array.metrics().gc_blocks_reclaimed(), 1);
        }
        // Invalidating the retired logical block is an error (mapping
        // is already gone).
        assert!(ftl.invalidate(l0).is_err());
    }
}
