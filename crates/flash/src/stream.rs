//! Event-driven streaming page reads.
//!
//! The decisive property of in-storage computing is that the *internal*
//! flash bandwidth (channels × 800 MB/s) far exceeds the *external* PCIe
//! bandwidth (§2.2, §6.3). This module models the internal side: a channel
//! streams pages from its chips, with
//!
//! * concurrent array reads across chips **and** planes (each plane has its
//!   own page buffer, §2.2),
//! * serialized transfers over the shared channel bus (flash channel
//!   arbitration),
//! * single-buffered planes: a plane starts its next array read once its
//!   buffer has been drained over the bus.
//!
//! The same machinery produces both the total stream time and per-page
//! completion timestamps (used by the FLASH_DFV prefetch-queue model of
//! §4.4).

use crate::timing::{FlashTiming, SimDuration};
use crate::SsdConfig;

/// Detailed outcome of streaming one shard's pages: the total stream
/// time plus the bus-arbitration wait the event loop observed (the time
/// pages sat in plane buffers with their array read done, waiting for
/// the shared channel bus). Feeds the telemetry layer's per-shard trace
/// spans and bus-wait counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamStats {
    /// Pages streamed.
    pub pages: u64,
    /// Total stream time.
    pub total: SimDuration,
    /// Summed bus-arbitration wait across all pages.
    pub bus_wait: SimDuration,
}

/// Internal result of the event loop.
struct RunOutcome {
    watched: SimDuration,
    last: SimDuration,
    bus_wait: SimDuration,
}

/// Event-driven model of one channel streaming pages in striped order.
#[derive(Debug, Clone)]
pub struct ChannelStream {
    planes: usize,
    array_read: SimDuration,
    page_transfer: SimDuration,
    /// Maximum outstanding page requests (prefetch window). `usize::MAX`
    /// models a host-side NVMe queue; an in-storage consumer is bounded by
    /// its FLASH_DFV queue capacity (§4.4, Figure 5).
    queue_depth: usize,
}

impl ChannelStream {
    /// Builds a stream model for one channel of `cfg` with an unbounded
    /// prefetch window (host-style deep queues).
    pub fn new(cfg: &SsdConfig) -> Self {
        ChannelStream {
            planes: cfg.geometry.planes_per_channel(),
            array_read: cfg.timing.array_read,
            page_transfer: cfg.timing.page_transfer(cfg.geometry.page_bytes),
            queue_depth: usize::MAX,
        }
    }

    /// Bounds the prefetch window to `depth` outstanding pages — the
    /// FLASH_DFV queue capacity of an in-storage accelerator. Page `i`'s
    /// array read cannot begin until page `i - depth` has been drained.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero.
    pub fn with_dfv_queue(mut self, depth: usize) -> Self {
        assert!(depth > 0, "queue depth must be positive");
        self.queue_depth = depth;
        self
    }

    /// Builds a stream model for a *chip-level* consumer sharing the
    /// channel bus: only the planes of one chip feed the stream, and the
    /// bus share is `1/chips` of the channel bus (the chips of a channel
    /// stream concurrently and the bus arbitrates round-robin).
    pub fn for_chip(cfg: &SsdConfig) -> Self {
        let chips = cfg.geometry.chips_per_channel as u64;
        ChannelStream {
            planes: cfg.geometry.planes_per_chip,
            array_read: cfg.timing.array_read,
            page_transfer: cfg.timing.page_transfer(cfg.geometry.page_bytes) * chips,
            queue_depth: usize::MAX,
        }
    }

    /// Builds a stream model for a chip-level accelerator that drains its
    /// own chip *directly* (§4.5: chip-level accelerators are interfaced
    /// to the NAND flash chips, so regular page reads bypass the shared
    /// channel bus and flow at the chip-interface rate).
    pub fn for_chip_direct(cfg: &SsdConfig) -> Self {
        ChannelStream {
            planes: cfg.geometry.planes_per_chip,
            array_read: cfg.timing.array_read,
            page_transfer: SimDuration::for_transfer(
                cfg.geometry.page_bytes as u64,
                cfg.timing.chip_interface_bytes_per_sec,
            ) + cfg.timing.bus_command_overhead,
            queue_depth: usize::MAX,
        }
    }

    /// Time for the channel to deliver `pages` pages, streamed round-robin
    /// across the channel's planes.
    pub fn stream_pages(&self, pages: u64) -> SimDuration {
        self.finish_times(pages).1
    }

    /// Like [`ChannelStream::stream_pages`], but also reports the summed
    /// bus-arbitration wait the event loop observed — the telemetry
    /// layer's window into channel-bus contention.
    pub fn stream_pages_detailed(&self, pages: u64) -> StreamStats {
        let sim = self.run(pages, None);
        StreamStats {
            pages,
            total: sim.last,
            bus_wait: sim.bus_wait,
        }
    }

    /// Time for the channel to *program* `pages` pages (the `writeDB`
    /// path): data moves over the bus into plane buffers, then the cell
    /// program (~600 µs) runs per plane, overlapped across the channel's
    /// planes exactly like reads — but with the order of bus and array
    /// phases swapped.
    pub fn program_pages(&self, pages: u64, program: SimDuration) -> SimDuration {
        if pages == 0 {
            return SimDuration::ZERO;
        }
        let mut plane_free = vec![SimDuration::ZERO; self.planes];
        let mut bus_free = SimDuration::ZERO;
        let mut last = SimDuration::ZERO;
        for i in 0..pages {
            let plane = (i % self.planes as u64) as usize;
            // Bus transfer into the plane's page buffer, then cell program.
            let xfer_start = bus_free.max(plane_free[plane]);
            let xfer_done = xfer_start + self.page_transfer;
            bus_free = xfer_done;
            let done = xfer_done + program;
            plane_free[plane] = done;
            last = done;
        }
        last
    }

    /// Time until the `n`-th page (1-based) is delivered, plus the total.
    /// Returns `(time_of_nth, total)`. `n` is clamped to `pages`.
    pub fn nth_and_total(&self, n: u64, pages: u64) -> (SimDuration, SimDuration) {
        let n = n.clamp(1, pages.max(1));
        let sim = self.run(pages, Some(n));
        (sim.watched, self.finish_times(pages).1)
    }

    /// Steady-state per-page service time of this stream (the larger of the
    /// bus transfer time and the per-plane array-read share).
    pub fn steady_state_per_page(&self) -> SimDuration {
        // Each plane cycles through (array read, wait-for-bus, transfer).
        // With P planes the array reads overlap P-wide, so the sustainable
        // rate is one page per max(transfer, (read + transfer)/P).
        let per_plane_cycle = self.array_read + self.page_transfer;
        let array_limited =
            SimDuration::from_nanos(per_plane_cycle.as_nanos() / self.planes.max(1) as u64);
        self.page_transfer.max(array_limited)
    }

    /// Effective sustained bandwidth in bytes/s for a given page size.
    pub fn effective_bandwidth(&self, page_bytes: usize) -> f64 {
        let per_page = self.steady_state_per_page();
        page_bytes as f64 / per_page.as_secs_f64()
    }

    fn finish_times(&self, pages: u64) -> (SimDuration, SimDuration) {
        let sim = self.run(pages, None);
        (sim.watched, sim.last)
    }

    /// Runs the event loop; if `watch` is Some(n), `watched` in the
    /// returned outcome is the delivery time of the n-th page, otherwise
    /// it equals the total. `bus_wait` accumulates, per page, the gap
    /// between its array read completing and the shared bus picking it
    /// up — the channel-bus arbitration cost.
    fn run(&self, pages: u64, watch: Option<u64>) -> RunOutcome {
        if pages == 0 {
            return RunOutcome {
                watched: SimDuration::ZERO,
                last: SimDuration::ZERO,
                bus_wait: SimDuration::ZERO,
            };
        }
        // plane_free[i]: when plane i can *start* its next array read
        // (single page buffer: freed when the bus drains it).
        let mut plane_free = vec![SimDuration::ZERO; self.planes];
        let mut bus_free = SimDuration::ZERO;
        let mut watched = SimDuration::ZERO;
        let mut last = SimDuration::ZERO;
        let mut bus_wait = SimDuration::ZERO;
        // Completion ring for the prefetch-window constraint.
        let window = self.queue_depth.min(pages as usize);
        let mut ring = vec![SimDuration::ZERO; window];
        for i in 0..pages {
            let plane = (i % self.planes as u64) as usize;
            // Page i may not start until page i - queue_depth has drained.
            let window_gate = if self.queue_depth != usize::MAX && i >= self.queue_depth as u64 {
                ring[(i % window as u64) as usize]
            } else {
                SimDuration::ZERO
            };
            let read_start = plane_free[plane].max(window_gate);
            let read_done = read_start + self.array_read;
            let xfer_start = read_done.max(bus_free);
            bus_wait += xfer_start - read_done;
            let done = xfer_start + self.page_transfer;
            bus_free = done;
            plane_free[plane] = done;
            if self.queue_depth != usize::MAX {
                ring[(i % window as u64) as usize] = done;
            }
            last = done;
            if watch == Some(i + 1) {
                watched = done;
            }
        }
        if watch.is_none() {
            watched = last;
        }
        RunOutcome {
            watched,
            last,
            bus_wait,
        }
    }
}

/// Aggregate stream across all channels of the drive: each channel streams
/// its share concurrently; the result is the slowest channel.
///
/// `pages_per_channel` gives each channel's page count (databases are
/// striped, §4.4, so counts differ by at most one page).
pub fn all_channels_stream(cfg: &SsdConfig, pages_per_channel: &[u64]) -> SimDuration {
    let model = ChannelStream::new(cfg);
    pages_per_channel
        .iter()
        .map(|&p| model.stream_pages(p))
        .fold(SimDuration::ZERO, SimDuration::max)
}

/// Simulated stall a scan pass pays for its read retries.
///
/// `retries_by_round[r]` counts reads whose round-`r` attempt (0-based)
/// failed and went another round; retry `r+1` costs
/// [`crate::timing::ReadRetryPolicy::cost_of`]`(r + 1)`. Retries on
/// different planes could in principle overlap, but a retrying read
/// monopolizes its plane's page buffer, so charging the full serial cost
/// models the §2.2 single-buffered-plane constraint conservatively.
pub fn retry_stall(timing: &FlashTiming, retries_by_round: &[u64]) -> SimDuration {
    retries_by_round
        .iter()
        .enumerate()
        .map(|(r, &n)| timing.read_retry.cost_of(r as u32 + 1) * n)
        .sum()
}

/// Splits `total_pages` evenly over `channels` channels (striped layout).
pub fn stripe_pages(total_pages: u64, channels: usize) -> Vec<u64> {
    let base = total_pages / channels as u64;
    let extra = (total_pages % channels as u64) as usize;
    (0..channels).map(|c| base + u64::from(c < extra)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SsdConfig {
        SsdConfig::paper_default()
    }

    #[test]
    fn steady_state_is_bus_bound_at_default_latency() {
        // 32 planes per channel: (53us + ~20.7us)/32 = 2.3us << 20.7us.
        let s = ChannelStream::new(&cfg());
        let per_page = s.steady_state_per_page();
        assert_eq!(per_page, cfg().timing.page_transfer(16 * 1024));
    }

    #[test]
    fn effective_bandwidth_near_channel_bus_rate() {
        let s = ChannelStream::new(&cfg());
        let bw = s.effective_bandwidth(16 * 1024);
        assert!(bw > 750e6 && bw <= 800e6, "bw = {bw}");
    }

    #[test]
    fn event_loop_matches_steady_state_for_long_streams() {
        let s = ChannelStream::new(&cfg());
        let pages = 10_000;
        let total = s.stream_pages(pages);
        let steady = s.steady_state_per_page() * pages;
        // Startup adds one array read; otherwise they agree closely.
        let slack = total.as_nanos() as f64 / steady.as_nanos() as f64;
        assert!((1.0..1.01).contains(&slack), "slack = {slack}");
    }

    #[test]
    fn quadrupled_latency_barely_hurts_throughput() {
        // Figure 9c: channel-level performance drops ~10% at 212us reads.
        let base = ChannelStream::new(&cfg()).stream_pages(10_000);
        let mut slow_cfg = cfg();
        slow_cfg.timing = slow_cfg.timing.with_read_latency_ratio(4, 1);
        let slow = ChannelStream::new(&slow_cfg).stream_pages(10_000);
        let ratio = slow.as_nanos() as f64 / base.as_nanos() as f64;
        assert!(ratio < 1.15, "ratio = {ratio}");
    }

    #[test]
    fn dfv_queue_depth_exposes_latency() {
        // An in-storage consumer with a 10-page FLASH_DFV queue keeps full
        // throughput at the default 53us latency but loses ~10-15% when
        // the latency quadruples (Figure 9c).
        let deep = ChannelStream::new(&cfg()).stream_pages(10_000);
        let queued = ChannelStream::new(&cfg())
            .with_dfv_queue(10)
            .stream_pages(10_000);
        let ratio = queued.as_nanos() as f64 / deep.as_nanos() as f64;
        assert!(ratio < 1.01, "baseline hurt by queue: {ratio}");

        let mut slow_cfg = cfg();
        slow_cfg.timing = slow_cfg.timing.with_read_latency_ratio(4, 1);
        let slow = ChannelStream::new(&slow_cfg)
            .with_dfv_queue(10)
            .stream_pages(10_000);
        let loss = slow.as_nanos() as f64 / queued.as_nanos() as f64;
        assert!((1.05..1.20).contains(&loss), "loss = {loss}");
    }

    #[test]
    #[should_panic(expected = "queue depth")]
    fn zero_queue_depth_panics() {
        let _ = ChannelStream::new(&cfg()).with_dfv_queue(0);
    }

    #[test]
    fn very_high_latency_becomes_array_bound() {
        let mut slow_cfg = cfg();
        slow_cfg.timing.array_read = SimDuration::from_millis(10);
        let s = ChannelStream::new(&slow_cfg);
        // (10ms + 20.7us) / 32 planes > 20.7us: array-limited now.
        assert!(s.steady_state_per_page() > slow_cfg.timing.page_transfer(16 * 1024));
    }

    #[test]
    fn chip_stream_is_slower_than_channel_stream() {
        let ch = ChannelStream::new(&cfg()).stream_pages(1000);
        let chip = ChannelStream::for_chip(&cfg()).stream_pages(1000);
        // One chip gets 1/4 of the bus.
        assert!(chip.as_nanos() > 3 * ch.as_nanos());
    }

    #[test]
    fn zero_pages_is_zero_time() {
        assert_eq!(
            ChannelStream::new(&cfg()).stream_pages(0),
            SimDuration::ZERO
        );
    }

    #[test]
    fn nth_page_time_is_monotonic() {
        let s = ChannelStream::new(&cfg());
        let (t1, total) = s.nth_and_total(1, 100);
        let (t50, _) = s.nth_and_total(50, 100);
        let (t100, _) = s.nth_and_total(100, 100);
        assert!(t1 < t50 && t50 < t100);
        assert_eq!(t100, total);
        // First page needs one array read plus one transfer.
        assert!(t1 >= cfg().timing.array_read);
    }

    #[test]
    fn program_throughput_is_plane_overlapped() {
        let c = cfg();
        let s = ChannelStream::new(&c);
        let t = s.program_pages(1000, c.timing.program);
        // With 32 planes, the 600 us program overlaps: the bus transfer
        // (20.7 us/page) dominates in steady state.
        let per_page = t.as_nanos() as f64 / 1000.0;
        assert!(per_page < 45_000.0, "per-page program = {per_page} ns");
        // But a single page pays the full program latency.
        let one = s.program_pages(1, c.timing.program);
        assert!(one >= c.timing.program);
        assert_eq!(s.program_pages(0, c.timing.program), SimDuration::ZERO);
    }

    #[test]
    fn program_is_monotone_in_pages() {
        let c = cfg();
        let s = ChannelStream::new(&c);
        let a = s.program_pages(10, c.timing.program);
        let b = s.program_pages(11, c.timing.program);
        assert!(b >= a);
    }

    #[test]
    fn detailed_stream_matches_plain_and_reports_bus_waits() {
        let s = ChannelStream::new(&cfg());
        for pages in [0, 1, 7, 1000] {
            let d = s.stream_pages_detailed(pages);
            assert_eq!(d.total, s.stream_pages(pages), "pages = {pages}");
            assert_eq!(d.pages, pages);
        }
        // The default config is bus-bound in steady state, so pages pile
        // up behind the shared bus and the wait is substantial.
        let d = s.stream_pages_detailed(1000);
        assert!(d.bus_wait > SimDuration::ZERO, "{d:?}");
        // A single page never waits for the bus.
        assert_eq!(s.stream_pages_detailed(1).bus_wait, SimDuration::ZERO);
    }

    #[test]
    fn retry_stall_charges_the_escalating_ladder() {
        let t = cfg().timing;
        assert_eq!(retry_stall(&t, &[]), SimDuration::ZERO);
        assert_eq!(retry_stall(&t, &[0, 0, 0]), SimDuration::ZERO);
        // 3 first-round retries at 60us + 1 second-round at 80us.
        assert_eq!(
            retry_stall(&t, &[3, 1]),
            SimDuration::from_micros(3 * 60 + 80)
        );
        let mut off = cfg().timing;
        off.read_retry = crate::timing::ReadRetryPolicy::disabled();
        assert_eq!(retry_stall(&off, &[5, 5]), SimDuration::ZERO);
    }

    #[test]
    fn stripe_distributes_remainder() {
        assert_eq!(stripe_pages(10, 4), vec![3, 3, 2, 2]);
        assert_eq!(stripe_pages(8, 4), vec![2, 2, 2, 2]);
        let total: u64 = stripe_pages(1_000_003, 32).iter().sum();
        assert_eq!(total, 1_000_003);
    }

    #[test]
    fn all_channels_is_max_of_channels() {
        let c = cfg();
        let per = stripe_pages(320, c.geometry.channels);
        let t = all_channels_stream(&c, &per);
        let single = ChannelStream::new(&c).stream_pages(10);
        assert_eq!(t, single);
    }
}
