//! Feature-database layout: striping across channels and chips.
//!
//! "To exploit the internal parallelisms of SSDs, DeepStore stripes the
//! feature database of each application across channels and chips. Each of
//! the feature vectors is page aligned." (§4.4). DeepStore stores a 32-byte
//! metadata record per database (db_id, starting physical address, feature
//! size, feature count) in a reserved flash block, cached in SSD DRAM.
//!
//! We support two placements:
//!
//! * [`Placement::PageAligned`] — the paper's layout: every feature starts
//!   on a page boundary (a 2 KB feature still occupies a 16 KB page). Fast
//!   offset arithmetic, but small features waste flash bandwidth.
//! * [`Placement::Packed`] — features are packed densely into pages
//!   (features never straddle a page only if they divide the page size).
//!   This is the layout used for the headline experiments so that a
//!   "25 GB feature database" means 25 GB of feature payload; the
//!   `ablation_layout` bench quantifies the difference.

use serde::{Deserialize, Serialize};

/// How feature vectors are packed into flash pages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Placement {
    /// Every feature vector starts on a page boundary (§4.4).
    PageAligned,
    /// Features are packed densely; a feature may span page boundaries.
    Packed,
}

/// Layout descriptor for one feature database.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DbLayout {
    /// Bytes per feature vector.
    pub feature_bytes: usize,
    /// Number of feature vectors.
    pub num_features: u64,
    /// Page size of the drive.
    pub page_bytes: usize,
    /// Packing policy.
    pub placement: Placement,
}

impl DbLayout {
    /// Creates a layout.
    ///
    /// # Panics
    ///
    /// Panics if `feature_bytes` or `page_bytes` is zero (construction-time
    /// programmer error).
    pub fn new(
        feature_bytes: usize,
        num_features: u64,
        page_bytes: usize,
        placement: Placement,
    ) -> Self {
        assert!(feature_bytes > 0 && page_bytes > 0);
        DbLayout {
            feature_bytes,
            num_features,
            page_bytes,
            placement,
        }
    }

    /// Pages a single feature occupies (page-aligned placement), or the
    /// average page cost per feature (packed).
    pub fn pages_per_feature(&self) -> f64 {
        match self.placement {
            Placement::PageAligned => self.feature_bytes.div_ceil(self.page_bytes) as f64,
            Placement::Packed => self.feature_bytes as f64 / self.page_bytes as f64,
        }
    }

    /// Total flash pages the database occupies.
    pub fn total_pages(&self) -> u64 {
        match self.placement {
            Placement::PageAligned => {
                self.num_features * self.feature_bytes.div_ceil(self.page_bytes) as u64
            }
            Placement::Packed => {
                (self.num_features * self.feature_bytes as u64).div_ceil(self.page_bytes as u64)
            }
        }
    }

    /// Total payload bytes.
    pub fn payload_bytes(&self) -> u64 {
        self.num_features * self.feature_bytes as u64
    }

    /// Flash footprint in bytes (pages × page size).
    pub fn footprint_bytes(&self) -> u64 {
        self.total_pages() * self.page_bytes as u64
    }

    /// Read amplification of the layout: flash bytes read per payload byte.
    pub fn read_amplification(&self) -> f64 {
        if self.payload_bytes() == 0 {
            1.0
        } else {
            self.footprint_bytes() as f64 / self.payload_bytes() as f64
        }
    }

    /// Features whose pages land on a given channel when the database is
    /// striped page-round-robin over `channels` channels.
    pub fn features_on_channel(&self, channel: usize, channels: usize) -> u64 {
        let pages = crate::stream::stripe_pages(self.total_pages(), channels);
        let share = pages[channel.min(channels - 1)] as f64 / self.total_pages().max(1) as f64;
        (self.num_features as f64 * share).round() as u64
    }

    /// Pages per channel under page-round-robin striping.
    pub fn pages_per_channel(&self, channels: usize) -> Vec<u64> {
        crate::stream::stripe_pages(self.total_pages(), channels)
    }

    /// Builds a layout holding `total_bytes` of payload (the paper's
    /// "25 GB of feature vectors" databases).
    pub fn for_payload(
        feature_bytes: usize,
        total_bytes: u64,
        page_bytes: usize,
        placement: Placement,
    ) -> Self {
        let num_features = total_bytes / feature_bytes as u64;
        Self::new(feature_bytes, num_features, page_bytes, placement)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PAGE: usize = 16 * 1024;

    #[test]
    fn page_aligned_small_features_amplify() {
        // TIR: 2 KB features on 16 KB pages -> 8x read amplification.
        let l = DbLayout::new(2048, 1000, PAGE, Placement::PageAligned);
        assert_eq!(l.total_pages(), 1000);
        assert!((l.read_amplification() - 8.0).abs() < 1e-9);
    }

    #[test]
    fn packed_small_features_do_not_amplify() {
        let l = DbLayout::new(2048, 1000, PAGE, Placement::Packed);
        assert_eq!(l.total_pages(), 125); // 8 features per page
        assert!((l.read_amplification() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn multi_page_features() {
        // ReId: 44 KB features -> 3 pages each when aligned.
        let l = DbLayout::new(44 * 1024, 10, PAGE, Placement::PageAligned);
        assert_eq!(l.total_pages(), 30);
        let p = DbLayout::new(44 * 1024, 10, PAGE, Placement::Packed);
        assert_eq!(p.total_pages(), 28); // ceil(440 KB / 16 KB)
    }

    #[test]
    fn for_payload_computes_feature_count() {
        let l = DbLayout::for_payload(2048, 25 * 1024 * 1024 * 1024, PAGE, Placement::Packed);
        assert_eq!(l.num_features, 25 * 1024 * 1024 * 1024 / 2048);
        assert_eq!(l.payload_bytes(), 25 * 1024 * 1024 * 1024);
    }

    #[test]
    fn striping_balances_channels() {
        let l = DbLayout::new(2048, 80_000, PAGE, Placement::Packed);
        let per = l.pages_per_channel(32);
        let max = *per.iter().max().unwrap();
        let min = *per.iter().min().unwrap();
        assert!(max - min <= 1);
        assert_eq!(per.iter().sum::<u64>(), l.total_pages());
    }

    #[test]
    fn features_on_channel_sums_close_to_total() {
        let l = DbLayout::new(2048, 10_000, PAGE, Placement::Packed);
        let sum: u64 = (0..32).map(|c| l.features_on_channel(c, 32)).sum();
        let dev = (sum as i64 - 10_000i64).unsigned_abs();
        assert!(dev <= 32, "sum = {sum}");
    }

    #[test]
    fn zero_features_edge_case() {
        let l = DbLayout::new(2048, 0, PAGE, Placement::Packed);
        assert_eq!(l.total_pages(), 0);
        assert_eq!(l.read_amplification(), 1.0);
    }

    #[test]
    #[should_panic]
    fn zero_feature_bytes_panics() {
        let _ = DbLayout::new(0, 1, PAGE, Placement::Packed);
    }
}
