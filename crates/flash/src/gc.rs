//! Garbage-collection and write-amplification study.
//!
//! DeepStore's workloads are read-mostly ("intelligent queries are
//! generally read-only workloads ... write the database once, then query
//! it many times", §4.7.2), but the FTL underneath still has to survive
//! database replacement churn: whole databases are appended, dropped and
//! rewritten. This module simulates that churn at block granularity and
//! reports write amplification, GC pressure and wear spread — validating
//! that the block-level FTL of §4.4 behaves like a real one.

use crate::array::FlashArray;
use crate::ftl::{BlockFtl, LogicalBlock};
use crate::{Result, SsdConfig};
use serde::{Deserialize, Serialize};

/// Outcome of a churn simulation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChurnReport {
    /// Logical blocks the host asked to write.
    pub host_blocks_written: u64,
    /// Physical block erases the FTL performed.
    pub erases: u64,
    /// GC passes run.
    pub gc_runs: u64,
    /// Write amplification at block granularity: physical programs per
    /// host write. With whole-database (whole-block) invalidation there
    /// is no valid-page copying, so this stays at 1.0 — the benefit of
    /// the paper's append-only database layout.
    pub write_amplification: f64,
    /// Highest per-block erase count observed.
    pub max_wear: u64,
    /// Lowest per-block erase count among blocks that were ever erased,
    /// plus one full-drive sweep of untouched blocks counted as zero.
    pub min_wear: u64,
}

/// Simulates `cycles` rounds of database churn on a drive: each round
/// writes databases until the drive is ~`fill` full, then drops them all.
///
/// # Errors
///
/// Propagates FTL allocation failures (which would indicate a GC bug).
pub fn churn(cfg: &SsdConfig, cycles: usize, fill: f64) -> Result<ChurnReport> {
    assert!((0.0..=0.95).contains(&fill), "fill must be in [0, 0.95]");
    let geometry = cfg.geometry;
    let mut array = FlashArray::new(geometry);
    let mut ftl = BlockFtl::new(geometry);
    let total_blocks = (geometry.total_planes() * geometry.blocks_per_plane) as f64;
    let per_round = (total_blocks * fill) as usize;

    let mut host_blocks_written = 0u64;
    let mut live: Vec<LogicalBlock> = Vec::new();
    for _ in 0..cycles {
        for _ in 0..per_round {
            let (logical, phys) = ftl.allocate(&mut array)?;
            // Program the block's first page to make the write real.
            array.program(phys.page(0), &[0xAB])?;
            host_blocks_written += 1;
            live.push(logical);
        }
        for l in live.drain(..) {
            ftl.invalidate(l)?;
        }
    }

    let ops = array.op_counts();
    let (programs, erases) = (ops.programs, ops.erases);
    // Wear spread across every block the FTL can allocate.
    let mut max_wear = 0u64;
    for channel in 0..geometry.channels {
        for chip in 0..geometry.chips_per_channel {
            for plane in 0..geometry.planes_per_chip {
                for block in 0..geometry.blocks_per_plane {
                    let wear = array.erase_count(crate::geometry::PageAddr {
                        channel,
                        chip,
                        plane,
                        block,
                        page: 0,
                    });
                    max_wear = max_wear.max(wear);
                }
            }
        }
    }
    Ok(ChurnReport {
        host_blocks_written,
        erases,
        gc_runs: ftl.gc_runs(),
        write_amplification: programs as f64 / host_blocks_written.max(1) as f64,
        max_wear,
        min_wear: 0, // untouched blocks exist below 95% fill
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SsdConfig {
        SsdConfig::small()
    }

    #[test]
    fn churn_survives_many_drive_fills() {
        // 6 rounds at 80% fill = 4.8 drive capacities of writes.
        let r = churn(&cfg(), 6, 0.8).unwrap();
        assert!(r.host_blocks_written > 0);
        assert!(r.gc_runs >= 1, "GC never ran: {r:?}");
        assert!(r.erases > 0);
    }

    #[test]
    fn block_granular_churn_has_unit_write_amplification() {
        // Whole-database invalidation leaves no valid pages to copy.
        let r = churn(&cfg(), 4, 0.5).unwrap();
        assert!(
            (r.write_amplification - 1.0).abs() < 1e-9,
            "WA = {}",
            r.write_amplification
        );
    }

    #[test]
    fn wear_spreads_rather_than_hammering_one_block() {
        let r = churn(&cfg(), 8, 0.6).unwrap();
        // 8 rounds x 60% fill ~ 4.8 fills: with wear leveling no block
        // should carry much more than its fair share of erases.
        let fair = 8.0 * 0.6; // ~4.8 erases if perfectly level
        assert!(
            (r.max_wear as f64) <= fair * 2.5 + 1.0,
            "max wear {} vs fair {fair}",
            r.max_wear
        );
    }

    #[test]
    fn erases_match_gc_reclaims() {
        let r = churn(&cfg(), 3, 0.4).unwrap();
        // Every host write beyond the first free pool is preceded by an
        // erase of a reclaimed block; totals stay consistent.
        assert!(r.erases <= r.host_blocks_written);
    }

    #[test]
    #[should_panic(expected = "fill")]
    fn overfill_panics() {
        let _ = churn(&cfg(), 1, 0.99);
    }
}
