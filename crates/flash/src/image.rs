//! Single-file persistent flash image with zero-copy mmap reads.
//!
//! The whole simulated device lives in one file:
//!
//! ```text
//! offset 0      header slot A (512 bytes, CRC-protected)
//! offset 512    header slot B (512 bytes, CRC-protected)
//! offset 4096   page region: total_pages × page_bytes, mmap'ed
//!               PROT_READ|PROT_WRITE, MAP_SHARED (sparse on disk)
//! after pages   manifest area: the engine's serialized manifest,
//!               relocated on every commit so the live copy is never
//!               overwritten in place
//! ```
//!
//! # Commit protocol (crash safety)
//!
//! A commit publishes a consistent snapshot with write-ahead ordering:
//!
//! 1. `msync` the page region (all page payloads reach the file).
//! 2. Write the new manifest at an offset that does not overlap the
//!    currently-referenced manifest, then `fsync`.
//! 3. Write the *inactive* header slot (slots alternate by generation
//!    parity) with the new generation, manifest pointer, manifest CRC
//!    and a header CRC, then `fsync`.
//!
//! A crash before step 3 leaves the old header (and its intact
//! manifest) authoritative; a torn header write fails its CRC and the
//! other slot wins. [`ImageFile::open`] validates both slots and uses
//! the highest-generation slot whose header *and* manifest CRCs check
//! out, so recovery is simply "state = last committed manifest".
//!
//! The `clean` header flag records whether the device was closed with
//! [`clean == true`]; an open that finds `clean == false` reports a
//! recovery (the process died with the image open — committed state is
//! still exact, anything after the last commit is discarded).
//!
//! # Zero-copy reads
//!
//! [`MmapStore::page`] returns a slice borrowed directly from the
//! mapping: the page-sequential scan decodes features straight out of
//! the file's page cache into the existing scratch arenas, with zero
//! steady-state allocations — the property the `bench_scan --persist`
//! gate and the persistence test suite enforce.
//!
//! # Why committed payloads cannot tear
//!
//! Page payloads written after a commit land only in blocks that were
//! *not* live at commit time: the FTL hands out fresh or GC-reclaimed
//! blocks, and a block referenced by a committed database is erased
//! only after the database is dropped (invalidated) or the block is
//! retired — both of which remove it from the committed live set at
//! the next commit. So the byte ranges a committed manifest references
//! are never mutated until that manifest has been superseded.

use crate::geometry::SsdGeometry;
use crate::store::PageStore;
use crate::{FlashError, Result};
use std::fs::{File, OpenOptions};
use std::path::{Path, PathBuf};

/// On-disk image format version (checked by [`ImageFile::open`]).
pub const IMAGE_FORMAT_VERSION: u32 = 1;

const MAGIC: [u8; 8] = *b"DPSTIMG\0";
const HEADER_SLOT_BYTES: usize = 512;
/// Header fields occupy this prefix of a slot; the header CRC covers it.
const HEADER_USED_BYTES: usize = 112;
/// Page region start: one OS page past the header slots (mmap offsets
/// must be page-aligned).
const PAGE_REGION_OFFSET: u64 = 4096;

fn align4k(x: u64) -> u64 {
    (x + 4095) & !4095
}

/// CRC-32 (IEEE 802.3 polynomial, reflected) over `bytes`.
fn crc32(bytes: &[u8]) -> u32 {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        let mut i = 0usize;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
                k += 1;
            }
            t[i] = c;
            i += 1;
        }
        t
    });
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = table[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// Platform shims: raw mmap/msync plus positional file I/O. The
/// simulator links no libc crate; on unix these call straight into the
/// C library the standard library already links.
#[cfg(unix)]
mod sys {
    use std::ffi::c_void;
    use std::fs::File;
    use std::io;
    use std::os::unix::fs::FileExt;
    use std::os::unix::io::AsRawFd;

    const PROT_READ: i32 = 1;
    const PROT_WRITE: i32 = 2;
    const MAP_SHARED: i32 = 1;
    const MS_SYNC: i32 = 4;

    extern "C" {
        fn mmap(
            addr: *mut c_void,
            length: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        fn munmap(addr: *mut c_void, length: usize) -> i32;
        fn msync(addr: *mut c_void, length: usize, flags: i32) -> i32;
    }

    pub fn map_shared(file: &File, offset: u64, len: usize) -> io::Result<*mut u8> {
        let offset = i64::try_from(offset)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "mmap offset overflow"))?;
        // SAFETY: len > 0, fd is a valid open file, offset is
        // page-aligned by construction (PAGE_REGION_OFFSET).
        let ptr = unsafe {
            mmap(
                std::ptr::null_mut(),
                len,
                PROT_READ | PROT_WRITE,
                MAP_SHARED,
                file.as_raw_fd(),
                offset,
            )
        };
        if ptr as isize == -1 {
            return Err(io::Error::last_os_error());
        }
        Ok(ptr.cast())
    }

    pub fn unmap(ptr: *mut u8, len: usize) {
        if !ptr.is_null() && len > 0 {
            // SAFETY: (ptr, len) came from a successful map_shared call.
            unsafe { munmap(ptr.cast(), len) };
        }
    }

    pub fn sync_region(ptr: *mut u8, len: usize) -> io::Result<()> {
        if ptr.is_null() || len == 0 {
            return Ok(());
        }
        // SAFETY: (ptr, len) came from a successful map_shared call.
        if unsafe { msync(ptr.cast(), len, MS_SYNC) } != 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    pub fn write_all_at(file: &File, buf: &[u8], offset: u64) -> io::Result<()> {
        FileExt::write_all_at(file, buf, offset)
    }

    pub fn read_exact_at(file: &File, buf: &mut [u8], offset: u64) -> io::Result<()> {
        FileExt::read_exact_at(file, buf, offset)
    }
}

#[cfg(not(unix))]
mod sys {
    use std::fs::File;
    use std::io;

    fn unsupported() -> io::Error {
        io::Error::new(
            io::ErrorKind::Unsupported,
            "persistent flash images require a unix platform",
        )
    }

    pub fn map_shared(_file: &File, _offset: u64, _len: usize) -> io::Result<*mut u8> {
        Err(unsupported())
    }

    pub fn unmap(_ptr: *mut u8, _len: usize) {}

    pub fn sync_region(_ptr: *mut u8, _len: usize) -> io::Result<()> {
        Err(unsupported())
    }

    pub fn write_all_at(_file: &File, _buf: &[u8], _offset: u64) -> io::Result<()> {
        Err(unsupported())
    }

    pub fn read_exact_at(_file: &File, _buf: &mut [u8], _offset: u64) -> io::Result<()> {
        Err(unsupported())
    }
}

fn io_err(context: &str, e: std::io::Error) -> FlashError {
    FlashError::Image(format!("{context}: {e}"))
}

/// The mmap'ed page region. Unmapped on drop.
#[derive(Debug)]
struct MapRegion {
    ptr: *mut u8,
    len: usize,
}

// SAFETY: the region is uniquely owned by one ImageFile; shared (&self)
// access only reads, mutation goes through &mut self.
unsafe impl Send for MapRegion {}
unsafe impl Sync for MapRegion {}

impl Drop for MapRegion {
    fn drop(&mut self) {
        sys::unmap(self.ptr, self.len);
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Header {
    format_version: u32,
    clean: bool,
    generation: u64,
    geometry: SsdGeometry,
    page_region_offset: u64,
    page_region_len: u64,
    manifest_offset: u64,
    manifest_len: u64,
    manifest_crc: u32,
}

impl Header {
    fn encode(&self) -> [u8; HEADER_SLOT_BYTES] {
        let mut slot = [0u8; HEADER_SLOT_BYTES];
        slot[0..8].copy_from_slice(&MAGIC);
        slot[8..12].copy_from_slice(&self.format_version.to_le_bytes());
        slot[12..16].copy_from_slice(&u32::from(self.clean).to_le_bytes());
        slot[16..24].copy_from_slice(&self.generation.to_le_bytes());
        let g = &self.geometry;
        for (i, v) in [
            g.channels,
            g.chips_per_channel,
            g.planes_per_chip,
            g.blocks_per_plane,
            g.pages_per_block,
            g.page_bytes,
        ]
        .into_iter()
        .enumerate()
        {
            let at = 24 + i * 8;
            slot[at..at + 8].copy_from_slice(&(v as u64).to_le_bytes());
        }
        slot[72..80].copy_from_slice(&self.page_region_offset.to_le_bytes());
        slot[80..88].copy_from_slice(&self.page_region_len.to_le_bytes());
        slot[88..96].copy_from_slice(&self.manifest_offset.to_le_bytes());
        slot[96..104].copy_from_slice(&self.manifest_len.to_le_bytes());
        slot[104..108].copy_from_slice(&self.manifest_crc.to_le_bytes());
        // 108..112 reserved (zero).
        let crc = crc32(&slot[..HEADER_USED_BYTES]);
        slot[HEADER_USED_BYTES..HEADER_USED_BYTES + 4].copy_from_slice(&crc.to_le_bytes());
        slot
    }

    /// Decodes and validates one header slot. Distinguishes "not a
    /// valid slot" (None) from "valid slot of an unsupported format
    /// version" (the error), so open can surface a typed
    /// [`FlashError::VersionMismatch`].
    fn decode(slot: &[u8]) -> Result<Option<Header>> {
        let u32_at = |at: usize| u32::from_le_bytes(slot[at..at + 4].try_into().expect("4 bytes"));
        let u64_at = |at: usize| u64::from_le_bytes(slot[at..at + 8].try_into().expect("8 bytes"));
        if slot.len() < HEADER_SLOT_BYTES || slot[0..8] != MAGIC {
            return Ok(None);
        }
        let stored_crc = u32_at(HEADER_USED_BYTES);
        if crc32(&slot[..HEADER_USED_BYTES]) != stored_crc {
            return Ok(None);
        }
        let format_version = u32_at(8);
        if format_version != IMAGE_FORMAT_VERSION {
            return Err(FlashError::VersionMismatch {
                expected: IMAGE_FORMAT_VERSION,
                found: format_version,
            });
        }
        let geometry = SsdGeometry {
            channels: u64_at(24) as usize,
            chips_per_channel: u64_at(32) as usize,
            planes_per_chip: u64_at(40) as usize,
            blocks_per_plane: u64_at(48) as usize,
            pages_per_block: u64_at(56) as usize,
            page_bytes: u64_at(64) as usize,
        };
        Ok(Some(Header {
            format_version,
            clean: u32_at(12) != 0,
            generation: u64_at(16),
            geometry,
            page_region_offset: u64_at(72),
            page_region_len: u64_at(80),
            manifest_offset: u64_at(88),
            manifest_len: u64_at(96),
            manifest_crc: u32_at(104),
        }))
    }
}

/// A single-file persistent device image: header slots, mmap'ed page
/// region and the committed manifest. See the module docs for the
/// format and the commit protocol.
#[derive(Debug)]
pub struct ImageFile {
    file: File,
    path: PathBuf,
    geometry: SsdGeometry,
    map: MapRegion,
    page_region_len: u64,
    generation: u64,
    manifest_offset: u64,
    manifest_len: u64,
}

impl ImageFile {
    /// Creates a fresh image file for `geometry`. Fails if `path`
    /// already exists (images are opened, not silently overwritten).
    /// The page region is a sparse hole, so a terabyte-scale geometry
    /// costs no disk until pages are programmed.
    ///
    /// The new image carries no committed manifest yet: the first
    /// [`ImageFile::commit`] publishes generation 2. Opening an image
    /// that was never committed fails (creation did not complete).
    ///
    /// # Errors
    ///
    /// Returns [`FlashError::Image`] on any I/O failure, including a
    /// pre-existing file at `path`.
    pub fn create(path: &Path, geometry: SsdGeometry) -> Result<Self> {
        let page_region_len = geometry.total_bytes();
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create_new(true)
            .open(path)
            .map_err(|e| io_err(&format!("create image {}", path.display()), e))?;
        file.set_len(PAGE_REGION_OFFSET + page_region_len)
            .map_err(|e| io_err("size image", e))?;
        let header = Header {
            format_version: IMAGE_FORMAT_VERSION,
            clean: false,
            generation: 1,
            geometry,
            page_region_offset: PAGE_REGION_OFFSET,
            page_region_len,
            manifest_offset: PAGE_REGION_OFFSET + page_region_len,
            manifest_len: 0,
            manifest_crc: 0,
        };
        let slot = 1u64; // generation 1 → slot 1; commits alternate.
        sys::write_all_at(&file, &header.encode(), slot * HEADER_SLOT_BYTES as u64)
            .map_err(|e| io_err("write image header", e))?;
        file.sync_all().map_err(|e| io_err("sync image", e))?;
        let ptr = map_page_region(&file, page_region_len)?;
        Ok(ImageFile {
            file,
            path: path.to_path_buf(),
            geometry,
            map: MapRegion {
                ptr,
                len: page_region_len as usize,
            },
            page_region_len,
            generation: 1,
            manifest_offset: PAGE_REGION_OFFSET + page_region_len,
            manifest_len: 0,
        })
    }

    /// Opens an existing image, returning the image, the last committed
    /// manifest bytes, and whether the image was closed cleanly.
    ///
    /// Both header slots are validated (magic, CRC, format version) and
    /// the highest-generation slot whose manifest also passes its CRC
    /// wins — a torn commit falls back to the previous generation.
    ///
    /// # Errors
    ///
    /// * [`FlashError::VersionMismatch`] if the image was written by a
    ///   different format version.
    /// * [`FlashError::Image`] for I/O failures, corrupt headers, or an
    ///   image that was never committed.
    pub fn open(path: &Path) -> Result<(Self, Vec<u8>, bool)> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(path)
            .map_err(|e| io_err(&format!("open image {}", path.display()), e))?;
        let mut slots = [0u8; 2 * HEADER_SLOT_BYTES];
        sys::read_exact_at(&file, &mut slots, 0).map_err(|e| io_err("read image headers", e))?;
        let mut version_mismatch = None;
        let mut candidates: Vec<Header> = Vec::new();
        for slot in [&slots[..HEADER_SLOT_BYTES], &slots[HEADER_SLOT_BYTES..]] {
            match Header::decode(slot) {
                Ok(Some(h)) => candidates.push(h),
                Ok(None) => {}
                Err(e) => version_mismatch = Some(e),
            }
        }
        candidates.sort_by_key(|h| std::cmp::Reverse(h.generation));
        if candidates.is_empty() {
            return Err(version_mismatch.unwrap_or_else(|| {
                FlashError::Image(format!("{}: no valid image header", path.display()))
            }));
        }
        for header in candidates {
            if header.manifest_len == 0 {
                continue; // created but never committed
            }
            let mut manifest = vec![
                0u8;
                usize::try_from(header.manifest_len).map_err(|_| {
                    FlashError::Image("manifest too large".into())
                })?
            ];
            if sys::read_exact_at(&file, &mut manifest, header.manifest_offset).is_err() {
                continue;
            }
            if crc32(&manifest) != header.manifest_crc {
                continue;
            }
            let ptr = map_page_region(&file, header.page_region_len)?;
            let image = ImageFile {
                file,
                path: path.to_path_buf(),
                geometry: header.geometry,
                map: MapRegion {
                    ptr,
                    len: header.page_region_len as usize,
                },
                page_region_len: header.page_region_len,
                generation: header.generation,
                manifest_offset: header.manifest_offset,
                manifest_len: header.manifest_len,
            };
            return Ok((image, manifest, header.clean));
        }
        Err(FlashError::Image(format!(
            "{}: image holds no committed state (creation or every commit was interrupted)",
            path.display()
        )))
    }

    /// The image's geometry (from the committed header).
    pub fn geometry(&self) -> SsdGeometry {
        self.geometry
    }

    /// The image file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The committed header generation.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    fn page_region_end(&self) -> u64 {
        PAGE_REGION_OFFSET + self.page_region_len
    }

    /// Syncs the page region to the file (step 1 of the commit
    /// protocol, also useful on its own as a data barrier).
    pub fn sync_pages(&self) -> Result<()> {
        sys::sync_region(self.map.ptr, self.map.len).map_err(|e| io_err("msync page region", e))
    }

    /// Commits `manifest` with the full ordering described in the
    /// module docs. `clean` marks a clean close.
    ///
    /// # Errors
    ///
    /// Returns [`FlashError::Image`] on any I/O failure; the previous
    /// commit stays authoritative in that case.
    pub fn commit(&mut self, manifest: &[u8], clean: bool) -> Result<()> {
        // 1. Page payloads reach the file before anything references them.
        self.sync_pages()?;
        // 2. Write the manifest somewhere that does not overlap the live
        //    one, so a crash mid-write cannot corrupt committed state.
        let base = self.page_region_end();
        let manifest_len = manifest.len() as u64;
        let offset = if self.manifest_len == 0 || self.manifest_offset >= base + manifest_len {
            base
        } else {
            align4k(self.manifest_offset + self.manifest_len).max(base)
        };
        sys::write_all_at(&self.file, manifest, offset).map_err(|e| io_err("write manifest", e))?;
        self.file
            .sync_all()
            .map_err(|e| io_err("sync manifest", e))?;
        // 3. Publish: bump the generation in the inactive header slot.
        let generation = self.generation + 1;
        let header = Header {
            format_version: IMAGE_FORMAT_VERSION,
            clean,
            generation,
            geometry: self.geometry,
            page_region_offset: PAGE_REGION_OFFSET,
            page_region_len: self.page_region_len,
            manifest_offset: offset,
            manifest_len,
            manifest_crc: crc32(manifest),
        };
        let slot = generation % 2;
        sys::write_all_at(
            &self.file,
            &header.encode(),
            slot * HEADER_SLOT_BYTES as u64,
        )
        .map_err(|e| io_err("write image header", e))?;
        self.file.sync_all().map_err(|e| io_err("sync header", e))?;
        self.generation = generation;
        self.manifest_offset = offset;
        self.manifest_len = manifest_len;
        Ok(())
    }

    fn page_range(&self, idx: u64, count: u64) -> std::ops::Range<usize> {
        let page_bytes = self.geometry.page_bytes as u64;
        let start = idx * page_bytes;
        let end = start + count * page_bytes;
        assert!(
            end <= self.page_region_len,
            "page index {idx} (+{count}) outside the image's page region"
        );
        start as usize..end as usize
    }

    fn pages(&self) -> &[u8] {
        if self.map.len == 0 {
            return &[];
        }
        // SAFETY: the mapping is valid for map.len bytes and uniquely
        // owned; &self access is read-only.
        unsafe { std::slice::from_raw_parts(self.map.ptr, self.map.len) }
    }

    fn pages_mut(&mut self) -> &mut [u8] {
        if self.map.len == 0 {
            return &mut [];
        }
        // SAFETY: the mapping is valid for map.len bytes and uniquely
        // owned; &mut self guarantees exclusive access.
        unsafe { std::slice::from_raw_parts_mut(self.map.ptr, self.map.len) }
    }
}

fn map_page_region(file: &File, len: u64) -> Result<*mut u8> {
    if len == 0 {
        return Ok(std::ptr::null_mut());
    }
    let len =
        usize::try_from(len).map_err(|_| FlashError::Image("page region too large".into()))?;
    sys::map_shared(file, PAGE_REGION_OFFSET, len).map_err(|e| io_err("mmap page region", e))
}

/// The persistent [`PageStore`] backend: page payloads live directly in
/// the image's mmap'ed page region.
#[derive(Debug)]
pub struct MmapStore {
    image: ImageFile,
}

impl MmapStore {
    /// Creates a store over a fresh image file (see [`ImageFile::create`]).
    ///
    /// # Errors
    ///
    /// Propagates [`ImageFile::create`] errors.
    pub fn create(path: &Path, geometry: SsdGeometry) -> Result<Self> {
        Ok(MmapStore {
            image: ImageFile::create(path, geometry)?,
        })
    }

    /// Opens a store over an existing image, returning the store, the
    /// committed manifest bytes, and whether the image was closed
    /// cleanly (see [`ImageFile::open`]).
    ///
    /// # Errors
    ///
    /// Propagates [`ImageFile::open`] errors.
    pub fn open(path: &Path) -> Result<(Self, Vec<u8>, bool)> {
        let (image, manifest, clean) = ImageFile::open(path)?;
        Ok((MmapStore { image }, manifest, clean))
    }

    /// The backing image's geometry.
    pub fn geometry(&self) -> SsdGeometry {
        self.image.geometry()
    }

    /// The backing image file.
    pub fn image(&self) -> &ImageFile {
        &self.image
    }
}

impl PageStore for MmapStore {
    fn page(&self, idx: u64) -> &[u8] {
        let range = self.image.page_range(idx, 1);
        &self.image.pages()[range]
    }

    fn program(&mut self, idx: u64, data: &[u8]) {
        let range = self.image.page_range(idx, 1);
        let page = &mut self.image.pages_mut()[range];
        page[..data.len()].copy_from_slice(data);
        page[data.len()..].fill(0);
    }

    fn erase(&mut self, first: u64, count: u64) {
        // NAND erase drives every cell to the all-ones state.
        let range = self.image.page_range(first, count);
        self.image.pages_mut()[range].fill(0xFF);
    }

    fn flush(&mut self) -> Result<()> {
        self.image.sync_pages()
    }

    fn commit(&mut self, manifest: &[u8], clean: bool) -> Result<()> {
        self.image.commit(manifest, clean)
    }

    fn is_persistent(&self) -> bool {
        true
    }

    fn backend(&self) -> &'static str {
        "mmap"
    }
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;
    use crate::SsdConfig;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// Unique temp path per test without wall-clock or RNG use.
    fn temp_image(tag: &str) -> PathBuf {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "deepstore-image-test-{}-{tag}-{n}.img",
            std::process::id()
        ))
    }

    struct Cleanup(PathBuf);
    impl Drop for Cleanup {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.0);
        }
    }

    #[test]
    fn create_commit_reopen_roundtrips_pages_and_manifest() {
        let path = temp_image("roundtrip");
        let _guard = Cleanup(path.clone());
        let g = SsdConfig::small().geometry;
        {
            let mut store = MmapStore::create(&path, g).unwrap();
            store.program(0, b"page zero");
            store.program(7, b"page seven");
            store.commit(b"manifest-v1", false).unwrap();
        }
        let (store, manifest, clean) = MmapStore::open(&path).unwrap();
        assert_eq!(manifest, b"manifest-v1");
        assert!(!clean);
        assert_eq!(&store.page(0)[..9], b"page zero");
        assert_eq!(&store.page(7)[..10], b"page seven");
        assert_eq!(store.page(0).len(), g.page_bytes);
        assert_eq!(store.geometry(), g);
        assert!(store.is_persistent());
        assert_eq!(store.backend(), "mmap");
    }

    #[test]
    fn clean_flag_tracks_close() {
        let path = temp_image("clean");
        let _guard = Cleanup(path.clone());
        let g = SsdConfig::small().geometry;
        {
            let mut store = MmapStore::create(&path, g).unwrap();
            store.commit(b"m", true).unwrap();
        }
        let (_, _, clean) = MmapStore::open(&path).unwrap();
        assert!(clean);
    }

    #[test]
    fn erase_fills_with_ones_and_program_zero_pads() {
        let path = temp_image("erase");
        let _guard = Cleanup(path.clone());
        let g = SsdConfig::small().geometry;
        let mut store = MmapStore::create(&path, g).unwrap();
        store.program(3, b"abc");
        assert_eq!(&store.page(3)[..4], b"abc\0");
        store.erase(0, g.pages_per_block as u64);
        assert!(store.page(3).iter().all(|&b| b == 0xFF));
    }

    #[test]
    fn open_missing_or_uncommitted_image_fails() {
        let path = temp_image("uncommitted");
        let _guard = Cleanup(path.clone());
        assert!(matches!(MmapStore::open(&path), Err(FlashError::Image(_))));
        let g = SsdConfig::small().geometry;
        drop(MmapStore::create(&path, g).unwrap());
        // Created but never committed: open refuses.
        assert!(matches!(MmapStore::open(&path), Err(FlashError::Image(_))));
    }

    #[test]
    fn create_refuses_existing_file() {
        let path = temp_image("exists");
        let _guard = Cleanup(path.clone());
        std::fs::write(&path, b"junk").unwrap();
        let g = SsdConfig::small().geometry;
        assert!(matches!(
            MmapStore::create(&path, g),
            Err(FlashError::Image(_))
        ));
    }

    #[test]
    fn torn_header_falls_back_to_previous_generation() {
        let path = temp_image("torn");
        let _guard = Cleanup(path.clone());
        let g = SsdConfig::small().geometry;
        {
            let mut store = MmapStore::create(&path, g).unwrap();
            store.program(0, b"gen2 data");
            store.commit(b"gen2", false).unwrap(); // generation 2 → slot 0
            store.commit(b"gen3", true).unwrap(); // generation 3 → slot 1
        }
        // Corrupt slot 1 (the generation-3 header) as a torn write would.
        {
            use std::os::unix::fs::FileExt;
            let f = OpenOptions::new().write(true).open(&path).unwrap();
            f.write_all_at(&[0xAA; 16], HEADER_SLOT_BYTES as u64 + 20)
                .unwrap();
        }
        let (_, manifest, clean) = MmapStore::open(&path).unwrap();
        assert_eq!(manifest, b"gen2");
        assert!(!clean);
    }

    #[test]
    fn future_format_version_is_a_typed_mismatch() {
        let path = temp_image("version");
        let _guard = Cleanup(path.clone());
        let g = SsdConfig::small().geometry;
        {
            let mut store = MmapStore::create(&path, g).unwrap();
            store.commit(b"m", true).unwrap();
        }
        // Rewrite both slots with a bumped format version (valid CRCs).
        {
            let f = OpenOptions::new()
                .read(true)
                .write(true)
                .open(&path)
                .unwrap();
            let mut slots = [0u8; 2 * HEADER_SLOT_BYTES];
            sys::read_exact_at(&f, &mut slots, 0).unwrap();
            for s in 0..2 {
                let slot = &mut slots[s * HEADER_SLOT_BYTES..(s + 1) * HEADER_SLOT_BYTES];
                if slot[0..8] != MAGIC {
                    continue;
                }
                slot[8..12].copy_from_slice(&99u32.to_le_bytes());
                let crc = crc32(&slot[..HEADER_USED_BYTES]);
                slot[HEADER_USED_BYTES..HEADER_USED_BYTES + 4].copy_from_slice(&crc.to_le_bytes());
            }
            sys::write_all_at(&f, &slots, 0).unwrap();
        }
        assert!(matches!(
            MmapStore::open(&path),
            Err(FlashError::VersionMismatch {
                expected: IMAGE_FORMAT_VERSION,
                found: 99,
            })
        ));
    }

    #[test]
    fn repeated_commits_alternate_and_stay_bounded() {
        let path = temp_image("alternate");
        let _guard = Cleanup(path.clone());
        let g = SsdConfig::small().geometry;
        let mut store = MmapStore::create(&path, g).unwrap();
        for i in 0..8u32 {
            store
                .commit(format!("manifest-{i}").as_bytes(), false)
                .unwrap();
        }
        let len = std::fs::metadata(&path).unwrap().len();
        // Manifests ping-pong near the page-region end instead of
        // growing the file unboundedly.
        assert!(len <= PAGE_REGION_OFFSET + g.total_bytes() + 3 * 4096);
        drop(store);
        let (_, manifest, _) = MmapStore::open(&path).unwrap();
        assert_eq!(manifest, b"manifest-7");
    }

    #[test]
    fn crc32_matches_known_vector() {
        // IEEE CRC-32 of "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }
}
