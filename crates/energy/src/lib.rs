//! Energy models for the DeepStore reproduction.
//!
//! The paper computes accelerator energy with a linear energy model (§6.1):
//! event counts from the cycle simulator multiplied by per-event energies,
//! with
//!
//! * arithmetic-unit energies scaled to 32 nm,
//! * CACTI-derived SRAM access energies (`itrs-hp` transistors for the SSD-
//!   and channel-level accelerators, `itrs-low` for the power-constrained
//!   chip-level accelerators),
//! * DRAM at 20 pJ/bit,
//! * flash page-access energy derived from the Intel DC P4500's power, and
//! * network-on-chip energy extrapolated from wire length and area.
//!
//! The [`EnergyModel`] converts [`AccessCounts`] into joules with a
//! per-category breakdown (compute / memory / flash) used by Figure 12, and
//! [`gpu`] models the baseline GPU's power as measured by `nvidia-smi`.

pub mod gpu;
pub mod sram;

use deepstore_systolic::AccessCounts;
use serde::{Deserialize, Serialize};

/// SRAM transistor flavor (CACTI model selection, §6.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SramVariant {
    /// High-performance transistors (SSD- and channel-level scratchpads).
    ItrsHp,
    /// Low-standby-power transistors (chip-level scratchpads, chosen for
    /// the tight 0.43 W budget).
    ItrsLow,
}

/// CACTI-style SRAM access energy in picojoules per byte, as a function of
/// capacity. Larger arrays pay longer bitlines/wordlines; the `itrs-low`
/// variant trades ~45% of the access energy for higher latency.
pub fn sram_pj_per_byte(capacity_bytes: usize, variant: SramVariant) -> f64 {
    let mb = (capacity_bytes as f64 / (1024.0 * 1024.0)).max(0.015625); // >= 16 KB
    let hp = 0.55 + 1.05 * mb.sqrt();
    match variant {
        SramVariant::ItrsHp => hp,
        SramVariant::ItrsLow => hp * 0.55,
    }
}

/// Per-event energies for one accelerator instance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Energy per 32-bit floating-point MAC at 32 nm, in pJ.
    pub mac_pj: f64,
    /// Local scratchpad energy, pJ/byte.
    pub sram_pj_per_byte: f64,
    /// Shared second-level scratchpad energy, pJ/byte (the SSD-level 8 MB
    /// scratchpad when used as an L2 by channel accelerators, §4.5).
    pub l2_pj_per_byte: f64,
    /// DRAM energy, pJ/byte (20 pJ/bit, §6.1).
    pub dram_pj_per_byte: f64,
    /// Flash page access energy, µJ/page (array read + bus transfer,
    /// derived from Intel DC P4500 power).
    pub flash_uj_per_page: f64,
    /// Interconnect energy, pJ/byte (CACTI wire extrapolation).
    pub noc_pj_per_byte: f64,
}

impl EnergyModel {
    /// Energy per fp32 MAC at 32 nm (multiplier + adder, scaled from
    /// published 45 nm figures).
    pub const MAC_PJ_32NM: f64 = 4.0;
    /// Flash page access energy in µJ for a 16 KB page.
    pub const FLASH_UJ_PER_PAGE: f64 = 12.0;
    /// NoC energy per byte.
    pub const NOC_PJ_PER_BYTE: f64 = 2.0;

    /// Builds the model for an accelerator with the given scratchpad.
    pub fn for_scratchpad(capacity_bytes: usize, variant: SramVariant) -> Self {
        EnergyModel {
            mac_pj: Self::MAC_PJ_32NM,
            sram_pj_per_byte: sram_pj_per_byte(capacity_bytes, variant),
            l2_pj_per_byte: sram_pj_per_byte(8 * 1024 * 1024, SramVariant::ItrsHp),
            dram_pj_per_byte: 20.0 * 8.0, // 20 pJ/bit x 8 bits/byte
            flash_uj_per_page: Self::FLASH_UJ_PER_PAGE,
            noc_pj_per_byte: Self::NOC_PJ_PER_BYTE,
        }
    }

    /// Converts access counts to a per-category energy breakdown.
    pub fn energy(&self, counts: &AccessCounts) -> EnergyBreakdown {
        let compute = counts.macs as f64 * self.mac_pj * 1e-12;
        let memory = (counts.sram_read_bytes + counts.sram_write_bytes) as f64
            * self.sram_pj_per_byte
            * 1e-12
            + counts.l2_read_bytes as f64 * self.l2_pj_per_byte * 1e-12
            + counts.dram_bytes as f64 * self.dram_pj_per_byte * 1e-12
            + counts.noc_bytes as f64 * self.noc_pj_per_byte * 1e-12;
        let flash = counts.flash_pages as f64 * self.flash_uj_per_page * 1e-6;
        EnergyBreakdown {
            compute_j: compute,
            memory_j: memory,
            flash_j: flash,
        }
    }
}

/// Energy split by the three categories of Figure 12.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// PE array (arithmetic) energy, joules.
    pub compute_j: f64,
    /// SRAM + L2 + DRAM + interconnect energy, joules.
    pub memory_j: f64,
    /// Flash array and bus energy, joules.
    pub flash_j: f64,
}

impl EnergyBreakdown {
    /// Total joules.
    pub fn total_j(&self) -> f64 {
        self.compute_j + self.memory_j + self.flash_j
    }

    /// Percentages (compute, memory, flash) of the total.
    pub fn percentages(&self) -> (f64, f64, f64) {
        let t = self.total_j();
        if t == 0.0 {
            (0.0, 0.0, 0.0)
        } else {
            (
                100.0 * self.compute_j / t,
                100.0 * self.memory_j / t,
                100.0 * self.flash_j / t,
            )
        }
    }
}

impl std::ops::Add for EnergyBreakdown {
    type Output = EnergyBreakdown;
    fn add(self, rhs: EnergyBreakdown) -> EnergyBreakdown {
        EnergyBreakdown {
            compute_j: self.compute_j + rhs.compute_j,
            memory_j: self.memory_j + rhs.memory_j,
            flash_j: self.flash_j + rhs.flash_j,
        }
    }
}

impl std::iter::Sum for EnergyBreakdown {
    fn sum<I: Iterator<Item = EnergyBreakdown>>(iter: I) -> EnergyBreakdown {
        iter.fold(EnergyBreakdown::default(), std::ops::Add::add)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sram_energy_grows_with_capacity() {
        let small = sram_pj_per_byte(512 * 1024, SramVariant::ItrsHp);
        let big = sram_pj_per_byte(8 * 1024 * 1024, SramVariant::ItrsHp);
        assert!(big > small);
        assert!(small > 0.8 && small < 2.0, "small = {small}");
        assert!(big > 2.5 && big < 5.0, "big = {big}");
    }

    #[test]
    fn itrs_low_is_cheaper() {
        let hp = sram_pj_per_byte(512 * 1024, SramVariant::ItrsHp);
        let low = sram_pj_per_byte(512 * 1024, SramVariant::ItrsLow);
        assert!(low < hp);
        assert!((low / hp - 0.55).abs() < 1e-9);
    }

    #[test]
    fn energy_accounts_all_categories() {
        let m = EnergyModel::for_scratchpad(512 * 1024, SramVariant::ItrsHp);
        let counts = AccessCounts {
            macs: 1_000_000,
            sram_read_bytes: 4_000_000,
            sram_write_bytes: 1_000_000,
            l2_read_bytes: 100,
            dram_bytes: 100,
            flash_pages: 10,
            noc_bytes: 100,
        };
        let e = m.energy(&counts);
        assert!(e.compute_j > 0.0 && e.memory_j > 0.0 && e.flash_j > 0.0);
        // 1e6 MACs at 4 pJ = 4 uJ.
        assert!((e.compute_j - 4e-6).abs() < 1e-12);
        // 10 pages at 12 uJ = 120 uJ.
        assert!((e.flash_j - 120e-6).abs() < 1e-12);
        let (c, mem, f) = e.percentages();
        assert!((c + mem + f - 100.0).abs() < 1e-9);
    }

    #[test]
    fn zero_counts_zero_energy() {
        let m = EnergyModel::for_scratchpad(512 * 1024, SramVariant::ItrsLow);
        let e = m.energy(&AccessCounts::default());
        assert_eq!(e.total_j(), 0.0);
        assert_eq!(e.percentages(), (0.0, 0.0, 0.0));
    }

    #[test]
    fn breakdowns_sum() {
        let a = EnergyBreakdown {
            compute_j: 1.0,
            memory_j: 2.0,
            flash_j: 3.0,
        };
        let total: EnergyBreakdown = [a, a].into_iter().sum();
        assert_eq!(total.total_j(), 12.0);
    }
}
