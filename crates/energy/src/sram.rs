//! Banked SRAM macro model (CACTI-style).
//!
//! The paper uses CACTI 6.5 to "estimate energy utilization of all SRAMs
//! in the 32 nm technology node" (§6.1). This module models the physical
//! shape behind those numbers: a scratchpad is built from banks, each
//! bank a square-ish subarray whose access energy splits into wordline,
//! bitline and peripheral components that scale with the subarray's side
//! length. The closed-form default [`crate::sram_pj_per_byte`] is a fit
//! of this model; `bank_model_matches_closed_form` keeps them aligned.

use crate::SramVariant;
use serde::{Deserialize, Serialize};

/// Physical organization of one scratchpad.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SramMacro {
    /// Total capacity in bytes.
    pub capacity_bytes: usize,
    /// Number of independently-addressable banks.
    pub banks: usize,
    /// Transistor flavor.
    pub variant: SramVariant,
}

impl SramMacro {
    /// A scratchpad organized with the default banking rule: one bank per
    /// 64 KB, at least 2, at most 32 — the "highly banked" organization
    /// §4.3 requires to feed the systolic array's parallel requests.
    pub fn with_default_banking(capacity_bytes: usize, variant: SramVariant) -> Self {
        let banks = (capacity_bytes / (64 * 1024)).clamp(2, 32);
        SramMacro {
            capacity_bytes,
            banks,
            variant,
        }
    }

    /// Bytes per bank.
    pub fn bank_bytes(&self) -> usize {
        self.capacity_bytes / self.banks.max(1)
    }

    /// Side length of a bank's (square) cell subarray, in cells, at one
    /// bit per cell.
    pub fn bank_side_cells(&self) -> f64 {
        ((self.bank_bytes() as f64) * 8.0).sqrt()
    }

    /// Dynamic energy of one 4-byte access, picojoules, decomposed into
    /// (wordline, bitline, peripheral).
    ///
    /// Wordline energy scales with the row width; bitline energy with the
    /// column height times the bits read; the peripheral (decoder, sense
    /// amps, output drivers) is near-constant per access. Constants are
    /// 32 nm-class and the `itrs-low` variant scales the array terms by
    /// the same 0.55 the closed-form model uses.
    pub fn access_energy_pj(&self) -> (f64, f64, f64) {
        let side = self.bank_side_cells();
        // pJ per cell-pitch of wire switched, 32 nm class.
        const WIRE_PJ_PER_CELL: f64 = 8.0e-5;
        const PERIPHERAL_PJ: f64 = 1.2;
        let wordline = side * WIRE_PJ_PER_CELL * 32.0; // one row of 32 bits
        let bitline = side * WIRE_PJ_PER_CELL * 32.0; // 32 columns discharge
        let scale = match self.variant {
            SramVariant::ItrsHp => 1.0,
            SramVariant::ItrsLow => 0.55,
        };
        (wordline * scale, bitline * scale, PERIPHERAL_PJ * scale)
    }

    /// Total energy per byte, picojoules (4-byte word accesses).
    pub fn pj_per_byte(&self) -> f64 {
        let (w, b, p) = self.access_energy_pj();
        (w + b + p) / 4.0
    }

    /// Leakage power of the whole macro, watts (dominated by cell count;
    /// `itrs-low` cells leak ~5x less).
    pub fn leakage_w(&self) -> f64 {
        let per_mb = match self.variant {
            SramVariant::ItrsHp => 0.04,
            SramVariant::ItrsLow => 0.008,
        };
        self.capacity_bytes as f64 / (1024.0 * 1024.0) * per_mb
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sram_pj_per_byte;

    #[test]
    fn default_banking_is_bounded() {
        let tiny = SramMacro::with_default_banking(16 * 1024, SramVariant::ItrsHp);
        assert_eq!(tiny.banks, 2);
        let mid = SramMacro::with_default_banking(512 * 1024, SramVariant::ItrsHp);
        assert_eq!(mid.banks, 8);
        let big = SramMacro::with_default_banking(8 * 1024 * 1024, SramVariant::ItrsHp);
        assert_eq!(big.banks, 32);
    }

    #[test]
    fn bigger_banks_cost_more_per_access() {
        let small = SramMacro {
            capacity_bytes: 512 * 1024,
            banks: 16,
            variant: SramVariant::ItrsHp,
        };
        let large = SramMacro {
            capacity_bytes: 512 * 1024,
            banks: 2,
            variant: SramVariant::ItrsHp,
        };
        assert!(large.pj_per_byte() > small.pj_per_byte());
    }

    #[test]
    fn bank_model_matches_closed_form() {
        // The closed-form fit used by the energy model should agree with
        // the physical bank model within 40% at both paper design points.
        for (capacity, variant) in [
            (512 * 1024, SramVariant::ItrsHp),
            (8 * 1024 * 1024, SramVariant::ItrsHp),
            (512 * 1024, SramVariant::ItrsLow),
        ] {
            let banked = SramMacro::with_default_banking(capacity, variant).pj_per_byte();
            let fit = sram_pj_per_byte(capacity, variant);
            let ratio = banked / fit;
            assert!(
                (0.6..=1.67).contains(&ratio),
                "{capacity}B {variant:?}: banked {banked:.2} vs fit {fit:.2}"
            );
        }
    }

    #[test]
    fn itrs_low_cuts_both_dynamic_and_leakage() {
        let hp = SramMacro::with_default_banking(512 * 1024, SramVariant::ItrsHp);
        let low = SramMacro::with_default_banking(512 * 1024, SramVariant::ItrsLow);
        assert!(low.pj_per_byte() < hp.pj_per_byte());
        assert!(low.leakage_w() < hp.leakage_w() / 4.0);
    }

    #[test]
    fn energy_components_are_positive() {
        let m = SramMacro::with_default_banking(1024 * 1024, SramVariant::ItrsHp);
        let (w, b, p) = m.access_energy_pj();
        assert!(w > 0.0 && b > 0.0 && p > 0.0);
        assert!(m.bank_side_cells() > 0.0);
        assert_eq!(m.bank_bytes(), 1024 * 1024 / 16);
    }
}
