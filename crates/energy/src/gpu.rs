//! Baseline GPU power model.
//!
//! §6.4: "The power consumption of the Volta GPU is measured using
//! nvidia-smi." The baseline keeps GPU utilization near 100% during the
//! similarity comparison (§3), so the measured power sits near the board
//! power limit; during I/O-bound stretches the board drops toward idle.
//! The model integrates those two phases.

use serde::{Deserialize, Serialize};

/// Power model for one GPU board.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GpuPowerModel {
    /// Board power while kernels run (W).
    pub active_watts: f64,
    /// Board power while idle/waiting on I/O (W).
    pub idle_watts: f64,
}

impl GpuPowerModel {
    /// NVIDIA Titan V (Volta), 250 W board power.
    pub fn titan_v() -> Self {
        GpuPowerModel {
            active_watts: 250.0,
            idle_watts: 60.0,
        }
    }

    /// NVIDIA Titan Xp (Pascal), 250 W board power.
    pub fn titan_xp() -> Self {
        GpuPowerModel {
            active_watts: 250.0,
            idle_watts: 60.0,
        }
    }

    /// Energy in joules for a query in which the GPU is busy for
    /// `busy_secs` out of `total_secs`.
    ///
    /// # Panics
    ///
    /// Panics if `busy_secs > total_secs` or either is negative.
    pub fn energy_j(&self, busy_secs: f64, total_secs: f64) -> f64 {
        assert!(
            busy_secs >= 0.0 && total_secs >= busy_secs,
            "busy {busy_secs} must be within total {total_secs}"
        );
        busy_secs * self.active_watts + (total_secs - busy_secs) * self.idle_watts
    }

    /// Average power over a query (W).
    pub fn average_watts(&self, busy_secs: f64, total_secs: f64) -> f64 {
        if total_secs == 0.0 {
            0.0
        } else {
            self.energy_j(busy_secs, total_secs) / total_secs
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fully_busy_uses_active_power() {
        let g = GpuPowerModel::titan_v();
        assert_eq!(g.energy_j(2.0, 2.0), 500.0);
        assert_eq!(g.average_watts(2.0, 2.0), 250.0);
    }

    #[test]
    fn idle_phases_use_idle_power() {
        let g = GpuPowerModel::titan_v();
        // 1 s busy + 1 s idle = 250 + 60.
        assert_eq!(g.energy_j(1.0, 2.0), 310.0);
        assert_eq!(g.average_watts(1.0, 2.0), 155.0);
    }

    #[test]
    fn zero_time_zero_energy() {
        let g = GpuPowerModel::titan_xp();
        assert_eq!(g.energy_j(0.0, 0.0), 0.0);
        assert_eq!(g.average_watts(0.0, 0.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "within total")]
    fn busy_exceeding_total_panics() {
        GpuPowerModel::titan_v().energy_j(3.0, 2.0);
    }
}
