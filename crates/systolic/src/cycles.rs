//! Cycle model: per-feature-vector SCN execution time.
//!
//! The key observation behind the paper's design-space exploration (§4.5,
//! Figure 6) is that when a similarity network processes **one feature
//! vector at a time**, each layer exposes only a bounded amount of
//! per-cycle parallelism:
//!
//! * an FC layer has at most `out_features` useful MACs per cycle (with
//!   output-stationary mapping, one PE per output element, reducing over
//!   `in_features` cycles) — the studied apps cap at 512, so "there is no
//!   performance gain beyond 512 PEs" for FC;
//! * a convolution has at most `kernel² × in_channels/groups` useful MACs
//!   per cycle (the reduction tree of one output element, with outputs
//!   produced over time) — the studied apps cap at 576, saturating the
//!   sweep at 1024 PEs;
//! * an element-wise layer processes `rows × cols` lanes per cycle thanks
//!   to the per-row input injection of §4.3 (a plain systolic array would
//!   manage only `cols`).
//!
//! When the PE array is smaller than a layer's intrinsic parallelism, the
//! layer is folded: `ceil(parallelism / PEs)` passes over the temporal
//! dimension. Weight-stationary arrays additionally pay weight-tile load
//! time, and — when the model outgrows the scratchpad — per-batch tile
//! *reloads*, which is what separates chip-level TextQA (weights fit) from
//! chip-level MIR/ESTP (weights must be re-streamed; §6.2).

use crate::{ArrayConfig, Dataflow};
use deepstore_nn::LayerShape;

/// Steady-state cycle cost of one layer for a single feature vector,
/// excluding pipeline fill (used by the Figure 6 design-space sweep, which
/// assumes infinite memory bandwidth and amortized fill).
pub fn layer_cycles_steady(shape: &LayerShape, array: &ArrayConfig) -> u64 {
    let pes = array.pes() as u64;
    let parallel = shape.intrinsic_parallelism() as u64;
    let folds = parallel.div_ceil(pes);
    match *shape {
        LayerShape::Dense { in_features, .. } => folds * in_features as u64,
        LayerShape::Conv2d { .. } => {
            // Convolution maps its reduction tree across the array ROWS
            // (which is why §4.5 reports "1024 PEs in one column" as the
            // best conv aspect): too few rows fold the reduction.
            let row_folds = parallel.div_ceil(array.rows as u64);
            row_folds * shape.output_len() as u64
        }
        LayerShape::ElementWise { len, .. } => (len as u64).div_ceil(pes),
    }
}

/// Cycle cost of one layer for a single feature vector.
pub fn layer_cycles(shape: &LayerShape, array: &ArrayConfig) -> u64 {
    let pes = array.pes() as u64;
    let fill = array.fill_cycles();
    match *shape {
        LayerShape::Dense { in_features, .. } => {
            let parallel = shape.intrinsic_parallelism() as u64;
            let folds = parallel.div_ceil(pes);
            match array.dataflow {
                Dataflow::OutputStationary => folds * (in_features as u64 + fill),
                // WS: weights for the fold must be loaded row-by-row before
                // inputs stream; the tile is rows x cols so loading costs
                // `rows` cycles per fold.
                Dataflow::WeightStationary => {
                    folds * (in_features as u64 + fill + array.rows as u64)
                }
            }
        }
        LayerShape::Conv2d { .. } => {
            // Reduction across ROWS (see `layer_cycles_steady`); outputs
            // stream temporally.
            let parallel = shape.intrinsic_parallelism() as u64;
            let folds = parallel.div_ceil(array.rows as u64);
            let outputs = shape.output_len() as u64;
            match array.dataflow {
                Dataflow::OutputStationary => folds * outputs + fill,
                Dataflow::WeightStationary => folds * outputs + fill + array.rows as u64,
            }
        }
        LayerShape::ElementWise { len, .. } => {
            // Per-row input injection: rows x cols lanes per cycle.
            (len as u64).div_ceil(pes) + fill
        }
    }
}

/// Cycle cost of one full SCN pass (all layers) for a single feature
/// vector, assuming operands are already in the scratchpad.
pub fn scn_cycles_per_feature(shapes: &[LayerShape], array: &ArrayConfig) -> u64 {
    shapes.iter().map(|s| layer_cycles(s, array)).sum()
}

/// Time in seconds for one SCN pass on this array.
pub fn scn_secs_per_feature(shapes: &[LayerShape], array: &ArrayConfig) -> f64 {
    array.cycles_to_secs(scn_cycles_per_feature(shapes, array))
}

/// Weight-stationary batching plan: how many features are processed per
/// weight-resident pass, and how many weight passes a scan needs.
///
/// The scratchpad must hold a weight tile, a double-buffered feature batch
/// and outputs. If the whole model fits alongside a reasonable batch, one
/// pass suffices and weights are loaded exactly once.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WsPlan {
    /// Features processed per weight pass (per accelerator).
    pub batch_per_pass: u64,
    /// Whether the entire model's weights fit in the scratchpad at once.
    pub weights_resident: bool,
    /// Bytes of weights that must be streamed in per pass (0 when
    /// resident after the first load).
    pub weight_bytes_per_pass: u64,
}

/// Computes the WS batching plan for a model on an array.
///
/// Weight tiles stream through a small double-buffered tile region
/// (64 KB); the rest of the scratchpad buffers the feature batch that each
/// weight pass serves. A model whose full weights fit in half the
/// remaining space is held resident, so only the first pass pays the
/// broadcast ("adding a large scratchpad increases design and area
/// complexity", §4.5, so the chip-level scratchpad stays at 512 KB).
pub fn ws_plan(total_weight_bytes: u64, feature_bytes: u64, array: &ArrayConfig) -> WsPlan {
    let spad = array.scratchpad_bytes as u64;
    let tile_buffer = (64 * 1024).min(spad / 4);
    let avail = spad - tile_buffer;
    if total_weight_bytes <= avail / 2 {
        let batch = ((avail - total_weight_bytes) / feature_bytes.max(1)).max(1);
        WsPlan {
            batch_per_pass: batch,
            weights_resident: true,
            weight_bytes_per_pass: 0,
        }
    } else {
        WsPlan {
            batch_per_pass: (avail / feature_bytes.max(1)).max(1),
            weights_resident: false,
            weight_bytes_per_pass: total_weight_bytes,
        }
    }
}

/// Weight-stationary per-feature cycle cost with explicit weight tiling:
/// every dense layer's weights pass tile-by-tile through the `rows×cols`
/// array; each tile costs a `rows + 1` load/drain plus the input stream,
/// which sustains `cols` MACs per cycle for a single feature vector.
/// Element-wise layers use the row-injection path. This is the chip-level
/// accelerator's operating mode (§4.5).
///
/// Returns `None` when the model cannot run on the array — the paper's
/// chip-level accelerator "can not execute ReId due to limited compute and
/// on-chip memory resources" (Table 4): a convolution whose reduction tree
/// exceeds the PE count has no weight-stationary mapping here.
pub fn ws_tile_cycles_per_feature(shapes: &[LayerShape], array: &ArrayConfig) -> Option<u64> {
    let pes = array.pes() as u64;
    let mut cycles = 0u64;
    for shape in shapes {
        match *shape {
            LayerShape::Dense { .. } => {
                let tiles = shape.weight_params().div_ceil(pes);
                cycles += shape.macs() / array.cols as u64 + tiles * (array.rows as u64 + 1);
            }
            LayerShape::Conv2d { .. } => {
                if shape.intrinsic_parallelism() as u64 > pes {
                    return None;
                }
                let tiles = shape.weight_params().div_ceil(pes);
                cycles += shape.macs() / array.cols as u64 + tiles * (array.rows as u64 + 1);
            }
            LayerShape::ElementWise { len, .. } => {
                cycles += (len as u64).div_ceil(pes) + array.fill_cycles();
            }
        }
    }
    Some(cycles)
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepstore_nn::{zoo, ElementWiseOp};

    fn os_array(rows: usize, cols: usize) -> ArrayConfig {
        ArrayConfig::new(rows, cols, 800e6, Dataflow::OutputStationary, 512 * 1024)
    }

    #[test]
    fn fc_reduction_dominates() {
        // 512x512 FC on a 1024-PE array: one fold, ~512 cycles + fill.
        let fc = LayerShape::Dense {
            in_features: 512,
            out_features: 512,
        };
        let arr = os_array(16, 64);
        let c = layer_cycles(&fc, &arr);
        assert_eq!(c, 512 + arr.fill_cycles());
    }

    #[test]
    fn fc_folds_when_array_too_small() {
        let fc = LayerShape::Dense {
            in_features: 512,
            out_features: 512,
        };
        let small = os_array(4, 32); // 128 PEs -> 4 folds
        let big = os_array(16, 64); // 1024 PEs -> 1 fold
        assert_eq!(layer_cycles(&fc, &small), 4 * (512 + small.fill_cycles()));
        assert!(layer_cycles(&fc, &small) > 3 * layer_cycles(&fc, &big));
    }

    #[test]
    fn fc_saturates_at_out_features() {
        // Figure 6: no gain beyond 512 PEs for the largest FC.
        let fc = LayerShape::Dense {
            in_features: 512,
            out_features: 512,
        };
        let at_512 = layer_cycles(&fc, &os_array(8, 64)); // 512 PEs
        let at_2048 = layer_cycles(&fc, &os_array(32, 64)); // 2048 PEs
                                                            // Same fold count (1); only fill differs slightly.
        assert_eq!(
            at_512 - os_array(8, 64).fill_cycles(),
            at_2048 - os_array(32, 64).fill_cycles()
        );
    }

    #[test]
    fn conv_temporal_dimension_is_outputs() {
        let conv = LayerShape::Conv2d {
            in_channels: 64,
            out_channels: 64,
            in_h: 16,
            in_w: 11,
            kernel: 3,
            stride: (2, 2),
            groups: 1,
        };
        // Reduction (576) folds over the 16 rows: ceil(576/16) = 36 folds;
        // outputs = 8*6*64 = 3072.
        let arr = os_array(16, 64);
        assert_eq!(layer_cycles(&conv, &arr), 36 * 3072 + arr.fill_cycles());
        // A tall array removes the folding entirely.
        let tall = ArrayConfig::new(576, 2, 800e6, Dataflow::OutputStationary, 512 * 1024);
        assert_eq!(layer_cycles(&conv, &tall), 3072 + tall.fill_cycles());
    }

    #[test]
    fn element_wise_uses_row_injection() {
        let ew = LayerShape::ElementWise {
            len: 2048,
            op: ElementWiseOp::Mul,
        };
        let arr = os_array(16, 64); // 1024 lanes
        assert_eq!(layer_cycles(&ew, &arr), 2 + arr.fill_cycles());
        // A 1-row array (plain systolic baseline) is rows x slower in the
        // streaming term.
        let plain = os_array(1, 64);
        assert_eq!(layer_cycles(&ew, &plain), 32 + plain.fill_cycles());
    }

    #[test]
    fn ws_pays_weight_load_per_fold() {
        let fc = LayerShape::Dense {
            in_features: 512,
            out_features: 512,
        };
        let os = os_array(16, 64);
        let ws = ArrayConfig::new(16, 64, 800e6, Dataflow::WeightStationary, 512 * 1024);
        assert_eq!(layer_cycles(&fc, &ws), layer_cycles(&fc, &os) + 16);
    }

    #[test]
    fn scn_cycles_sum_layers() {
        let shapes = zoo::tir().layer_shapes();
        let arr = os_array(16, 64);
        let total = scn_cycles_per_feature(&shapes, &arr);
        let sum: u64 = shapes.iter().map(|s| layer_cycles(s, &arr)).sum();
        assert_eq!(total, sum);
        // TIR per-feature time on a channel accelerator is ~1.6 us
        // (reductions 512+512+256 plus fills at 800 MHz).
        let secs = scn_secs_per_feature(&shapes, &arr);
        assert!(secs > 1.2e-6 && secs < 2.5e-6, "secs = {secs}");
    }

    #[test]
    fn ws_plan_detects_resident_weights() {
        let arr = ArrayConfig::new(4, 32, 400e6, Dataflow::WeightStationary, 512 * 1024);
        // TextQA: 0.157 MB weights fit half of a 512 KB scratchpad.
        let textqa = zoo::textqa();
        let plan = ws_plan(textqa.weight_bytes(), textqa.feature_bytes() as u64, &arr);
        assert!(plan.weights_resident);
        assert_eq!(plan.weight_bytes_per_pass, 0);
        // MIR: 2 MB weights do not fit.
        let mir = zoo::mir();
        let plan = ws_plan(mir.weight_bytes(), mir.feature_bytes() as u64, &arr);
        assert!(!plan.weights_resident);
        assert_eq!(plan.weight_bytes_per_pass, mir.weight_bytes());
        assert!(plan.batch_per_pass >= 1);
    }

    #[test]
    fn ws_plan_batch_shrinks_with_big_features() {
        let arr = ArrayConfig::new(4, 32, 400e6, Dataflow::WeightStationary, 512 * 1024);
        let small = ws_plan(0, 2048, &arr).batch_per_pass;
        let big = ws_plan(0, 45056, &arr).batch_per_pass;
        assert!(small > big);
        assert!(big >= 1);
    }
}
