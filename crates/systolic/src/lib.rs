//! Systolic-array accelerator simulator for the DeepStore reproduction.
//!
//! This is the SCALE-Sim half of the paper's simulation platform (§5),
//! rebuilt from scratch and extended exactly as the paper extends
//! SCALE-Sim: element-wise layers via per-row input injection (§4.3), and a
//! multi-level scratchpad hierarchy (§4.5).
//!
//! * [`ArrayConfig`] — a rectangular PE array with an output-stationary
//!   (OS) or weight-stationary (WS) dataflow, a clock, and a scratchpad.
//! * [`cycles`] — the cycle model: per-feature-vector SCN execution time
//!   for each layer family, including WS weight-tile reloads when a model
//!   does not fit the scratchpad.
//! * [`counts`] — access counting (MACs, SRAM/DRAM/bus traffic) feeding the
//!   energy model.
//! * [`topk`] — the controller's top-K priority queue, implemented as the
//!   paper describes (§4.3): a sorted tag array plus a mapping table,
//!   searched by binary search, with a cycle-cost model.
//! * [`dse`] — the PE-count / aspect-ratio sweep of Figure 6.
//!
//! # Example
//!
//! ```
//! use deepstore_systolic::{ArrayConfig, Dataflow, cycles::scn_cycles_per_feature};
//! use deepstore_nn::zoo;
//!
//! // The paper's channel-level accelerator: 16x64 PEs, OS dataflow.
//! let arr = ArrayConfig::new(16, 64, 800e6, Dataflow::OutputStationary, 512 * 1024);
//! let cycles = scn_cycles_per_feature(&zoo::tir().layer_shapes(), &arr);
//! assert!(cycles > 0);
//! ```

pub mod counts;
pub mod cycles;
pub mod dse;
pub mod schedule;
pub mod topk;

pub use counts::AccessCounts;

use serde::{Deserialize, Serialize};

/// Systolic-array dataflow (§4.5).
///
/// DeepStore uses output-stationary for the SSD- and channel-level
/// accelerators (maximizes partial-sum reuse for FC layers) and
/// weight-stationary for the chip-level accelerators (maximizes weight
/// reuse, minimizing traffic over the shared channel bus).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Dataflow {
    /// Each PE accumulates one output element; weights and inputs stream.
    OutputStationary,
    /// Each PE holds one weight; inputs stream, partial sums move.
    WeightStationary,
}

/// A rectangular systolic array with its scratchpad.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ArrayConfig {
    /// PE rows.
    pub rows: usize,
    /// PE columns.
    pub cols: usize,
    /// Clock frequency in Hz.
    pub freq_hz: f64,
    /// Dataflow.
    pub dataflow: Dataflow,
    /// Local scratchpad capacity in bytes.
    pub scratchpad_bytes: usize,
}

impl ArrayConfig {
    /// Creates an array configuration.
    ///
    /// # Panics
    ///
    /// Panics if any dimension or the frequency is zero.
    pub fn new(
        rows: usize,
        cols: usize,
        freq_hz: f64,
        dataflow: Dataflow,
        scratchpad_bytes: usize,
    ) -> Self {
        assert!(rows > 0 && cols > 0, "array must be non-empty");
        assert!(freq_hz > 0.0, "frequency must be positive");
        ArrayConfig {
            rows,
            cols,
            freq_hz,
            dataflow,
            scratchpad_bytes,
        }
    }

    /// Total PE count.
    pub fn pes(&self) -> usize {
        self.rows * self.cols
    }

    /// Pipeline fill cycles of the array (data ripples across rows+cols).
    pub fn fill_cycles(&self) -> u64 {
        (self.rows + self.cols - 2) as u64
    }

    /// Peak MAC throughput in MACs/s.
    pub fn peak_macs_per_sec(&self) -> f64 {
        self.pes() as f64 * self.freq_hz
    }

    /// Converts a cycle count to seconds at this array's clock.
    pub fn cycles_to_secs(&self, cycles: u64) -> f64 {
        cycles as f64 / self.freq_hz
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pes_and_fill() {
        let a = ArrayConfig::new(16, 64, 800e6, Dataflow::OutputStationary, 1 << 19);
        assert_eq!(a.pes(), 1024);
        assert_eq!(a.fill_cycles(), 78);
        assert_eq!(a.peak_macs_per_sec(), 1024.0 * 800e6);
        assert!((a.cycles_to_secs(800_000_000) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_rows_panics() {
        let _ = ArrayConfig::new(0, 64, 800e6, Dataflow::OutputStationary, 1);
    }

    #[test]
    #[should_panic(expected = "frequency")]
    fn zero_freq_panics() {
        let _ = ArrayConfig::new(1, 1, 0.0, Dataflow::WeightStationary, 1);
    }
}
