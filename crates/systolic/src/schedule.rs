//! Per-layer execution schedules.
//!
//! §5: the modified SCALE-Sim "generate\[s\] the access patterns for the
//! different levels of the memory hierarchy as well as the traces for
//! loading dataset feature vectors from flash", which then drive the
//! SSD-Sim half. This module produces that intermediate artifact: an
//! ordered [`LayerExecution`] record per layer — start/end cycles, fold
//! counts and operand traffic — and whole-SCN schedules whose totals agree
//! exactly with the aggregate cycle and count models in
//! [`crate::cycles`] / [`crate::counts`].

use crate::counts::layer_counts;
use crate::cycles::layer_cycles;
use crate::{AccessCounts, ArrayConfig};
use deepstore_nn::LayerShape;
use serde::{Deserialize, Serialize};

/// One layer's slot in the schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerExecution {
    /// Index of the layer in the SCN.
    pub layer: usize,
    /// The layer's shape.
    pub shape: LayerShape,
    /// First cycle of the layer (inclusive).
    pub start_cycle: u64,
    /// One past the last cycle.
    pub end_cycle: u64,
    /// Folds executed (array smaller than the layer's parallelism).
    pub folds: u64,
    /// Operand traffic attributed to this layer.
    pub counts: AccessCounts,
}

impl LayerExecution {
    /// Cycles spent in this layer.
    pub fn cycles(&self) -> u64 {
        self.end_cycle - self.start_cycle
    }
}

/// A whole-SCN schedule for one feature vector.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScnSchedule {
    /// Per-layer slots in execution order.
    pub layers: Vec<LayerExecution>,
}

impl ScnSchedule {
    /// Builds the schedule of one SCN pass on `array`.
    pub fn build(shapes: &[LayerShape], array: &ArrayConfig) -> ScnSchedule {
        let mut cursor = 0u64;
        let layers = shapes
            .iter()
            .enumerate()
            .map(|(layer, shape)| {
                let cycles = layer_cycles(shape, array);
                let parallel = shape.intrinsic_parallelism() as u64;
                let folds = match shape {
                    LayerShape::Conv2d { .. } => parallel.div_ceil(array.rows as u64),
                    _ => parallel.div_ceil(array.pes() as u64),
                };
                let exec = LayerExecution {
                    layer,
                    shape: *shape,
                    start_cycle: cursor,
                    end_cycle: cursor + cycles,
                    folds,
                    counts: layer_counts(shape, array),
                };
                cursor = exec.end_cycle;
                exec
            })
            .collect();
        ScnSchedule { layers }
    }

    /// Total cycles of the pass.
    pub fn total_cycles(&self) -> u64 {
        self.layers.last().map(|l| l.end_cycle).unwrap_or(0)
    }

    /// Total operand traffic of the pass.
    pub fn total_counts(&self) -> AccessCounts {
        self.layers.iter().map(|l| l.counts).sum()
    }

    /// The layer active at a given cycle, if any.
    pub fn layer_at(&self, cycle: u64) -> Option<&LayerExecution> {
        self.layers
            .iter()
            .find(|l| l.start_cycle <= cycle && cycle < l.end_cycle)
    }

    /// Utilization profile: for each layer, the fraction of the array's
    /// PEs doing useful MACs on an average cycle of that layer.
    pub fn utilization(&self, array: &ArrayConfig) -> Vec<f64> {
        self.layers
            .iter()
            .map(|l| {
                let cycles = l.cycles().max(1);
                l.counts.macs as f64 / (cycles as f64 * array.pes() as f64)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counts::scn_counts_per_feature;
    use crate::cycles::scn_cycles_per_feature;
    use crate::Dataflow;
    use deepstore_nn::zoo;

    fn arr() -> ArrayConfig {
        ArrayConfig::new(16, 64, 800e6, Dataflow::OutputStationary, 512 * 1024)
    }

    #[test]
    fn schedule_totals_agree_with_aggregate_models() {
        for model in zoo::all() {
            let shapes = model.layer_shapes();
            let sched = ScnSchedule::build(&shapes, &arr());
            assert_eq!(
                sched.total_cycles(),
                scn_cycles_per_feature(&shapes, &arr()),
                "{}",
                model.name()
            );
            assert_eq!(
                sched.total_counts(),
                scn_counts_per_feature(&shapes, &arr()),
                "{}",
                model.name()
            );
        }
    }

    #[test]
    fn layers_are_contiguous_and_ordered() {
        let sched = ScnSchedule::build(&zoo::reid().layer_shapes(), &arr());
        assert_eq!(sched.layers[0].start_cycle, 0);
        for w in sched.layers.windows(2) {
            assert_eq!(w[0].end_cycle, w[1].start_cycle);
        }
        assert!(sched.layers.iter().all(|l| l.cycles() > 0));
    }

    #[test]
    fn layer_at_finds_the_active_layer() {
        let sched = ScnSchedule::build(&zoo::tir().layer_shapes(), &arr());
        assert_eq!(sched.layer_at(0).unwrap().layer, 0);
        let mid = sched.layers[1].start_cycle;
        assert_eq!(sched.layer_at(mid).unwrap().layer, 1);
        assert!(sched.layer_at(sched.total_cycles()).is_none());
    }

    #[test]
    fn reid_conv_folds_dominate_the_schedule() {
        // The 3x3x64 conv folds 36x over the 16-row channel array — the
        // reason ReId is compute-bound there (§6.2).
        let sched = ScnSchedule::build(&zoo::reid().layer_shapes(), &arr());
        let conv = sched
            .layers
            .iter()
            .find(|l| l.shape.is_conv())
            .expect("reid has convs");
        assert_eq!(conv.folds, 36);
        let longest = sched.layers.iter().max_by_key(|l| l.cycles()).unwrap();
        assert!(longest.shape.is_conv());
    }

    #[test]
    fn utilization_is_bounded() {
        for model in zoo::all() {
            let sched = ScnSchedule::build(&model.layer_shapes(), &arr());
            for u in sched.utilization(&arr()) {
                assert!((0.0..=1.0 + 1e-9).contains(&u), "{}: {u}", model.name());
            }
        }
    }

    #[test]
    fn empty_schedule_is_zero() {
        let sched = ScnSchedule::build(&[], &arr());
        assert_eq!(sched.total_cycles(), 0);
        assert!(sched.layer_at(0).is_none());
    }
}
