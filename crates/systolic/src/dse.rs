//! Design-space exploration primitives (§4.5, Figure 6).
//!
//! The paper sizes the in-storage accelerators by sweeping the PE count
//! (128–32768) and the aspect ratio of the systolic array under an
//! infinite-memory-bandwidth assumption, measuring the performance of the
//! largest FC and convolutional layers in the studied applications. The
//! sweep shows FC saturating at 512 PEs and convolution at 1024 PEs,
//! because a single feature vector exposes only that much per-cycle
//! parallelism.

use crate::cycles::layer_cycles_steady;
use crate::{ArrayConfig, Dataflow};
use deepstore_nn::LayerShape;

/// All factor pairs `(rows, cols)` with `rows * cols == pes`, i.e. every
/// aspect ratio of a given PE budget.
pub fn aspect_ratios(pes: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut r = 1;
    while r * r <= pes {
        if pes.is_multiple_of(r) {
            out.push((r, pes / r));
            if r != pes / r {
                out.push((pes / r, r));
            }
        }
        r += 1;
    }
    out.sort_unstable();
    out
}

/// Result of evaluating one PE budget: the fastest aspect ratio and its
/// cycle count for a layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepPoint {
    /// Total PEs evaluated.
    pub pes: usize,
    /// Best (rows, cols) found.
    pub best_aspect: (usize, usize),
    /// Cycles at the best aspect ratio.
    pub cycles: u64,
}

/// Finds the fastest aspect ratio for a layer at a given PE budget
/// (Figure 6 considers "the aspect ratio with the fastest performance" at
/// each point). Steady-state cycles (fill amortized, infinite bandwidth)
/// are compared; ties are broken the way the paper reports its winners —
/// FC layers prefer wide arrays ("512 PEs in one row"), convolutions
/// prefer tall arrays ("1024 PEs in one column").
pub fn best_aspect_for_layer(shape: &LayerShape, pes: usize, freq_hz: f64) -> SweepPoint {
    let mut best: Option<(SweepPoint, usize)> = None;
    for (rows, cols) in aspect_ratios(pes) {
        let arr = ArrayConfig::new(rows, cols, freq_hz, Dataflow::OutputStationary, usize::MAX);
        let cycles = layer_cycles_steady(shape, &arr);
        // Tie-break key: fewer rows for FC/element-wise (wide wins), fewer
        // columns for convolution (tall wins).
        let tie = if shape.is_conv() { cols } else { rows };
        let better = match &best {
            None => true,
            Some((b, bt)) => cycles < b.cycles || (cycles == b.cycles && tie < *bt),
        };
        if better {
            best = Some((
                SweepPoint {
                    pes,
                    best_aspect: (rows, cols),
                    cycles,
                },
                tie,
            ));
        }
    }
    best.expect("at least one aspect ratio exists").0
}

/// Sweeps PE budgets for a layer and reports speedup relative to the first
/// budget (Figure 6's y-axis).
pub fn pe_sweep(shape: &LayerShape, budgets: &[usize], freq_hz: f64) -> Vec<(SweepPoint, f64)> {
    let points: Vec<SweepPoint> = budgets
        .iter()
        .map(|&p| best_aspect_for_layer(shape, p, freq_hz))
        .collect();
    let base = points.first().map(|p| p.cycles).unwrap_or(1).max(1);
    points
        .into_iter()
        .map(|p| {
            let speedup = base as f64 / p.cycles as f64;
            (p, speedup)
        })
        .collect()
}

/// The largest FC layer across a set of models (by intrinsic parallelism),
/// as used for the Figure 6 "Fully Connected" curve.
pub fn largest_fc(models: &[deepstore_nn::Model]) -> Option<LayerShape> {
    models
        .iter()
        .flat_map(|m| m.layer_shapes())
        .filter(|s| s.is_dense())
        .max_by_key(|s| (s.intrinsic_parallelism(), s.macs()))
}

/// The largest convolutional layer across a set of models, for the
/// Figure 6 "Convolution" curve.
pub fn largest_conv(models: &[deepstore_nn::Model]) -> Option<LayerShape> {
    models
        .iter()
        .flat_map(|m| m.layer_shapes())
        .filter(|s| s.is_conv())
        .max_by_key(|s| (s.intrinsic_parallelism(), s.macs()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepstore_nn::zoo;

    const BUDGETS: [usize; 9] = [128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768];

    #[test]
    fn aspect_ratios_multiply_out() {
        for (r, c) in aspect_ratios(1024) {
            assert_eq!(r * c, 1024);
        }
        assert!(aspect_ratios(1024).contains(&(16, 64)));
        assert_eq!(aspect_ratios(1).len(), 1);
    }

    #[test]
    fn fc_saturates_at_512_pes() {
        // Figure 6: the largest FC layer gains nothing beyond 512 PEs.
        let fc = largest_fc(&zoo::all()).unwrap();
        assert_eq!(fc.intrinsic_parallelism(), 512);
        let sweep = pe_sweep(&fc, &BUDGETS, 800e6);
        let at = |pes: usize| {
            sweep
                .iter()
                .find(|(p, _)| p.pes == pes)
                .map(|(_, s)| *s)
                .unwrap()
        };
        assert!(at(512) > at(256));
        // No gain at all beyond 512 PEs in steady state.
        assert_eq!(at(1024), at(512));
        assert_eq!(at(32768), at(512));
        // Total speedup from 128 PEs is 4x (fold count 4 -> 1).
        assert!((at(512) - 4.0).abs() < 1e-9, "at(512) = {}", at(512));
    }

    #[test]
    fn conv_saturates_at_1024_pes() {
        let conv = largest_conv(&zoo::all()).unwrap();
        assert_eq!(conv.intrinsic_parallelism(), 576);
        let sweep = pe_sweep(&conv, &BUDGETS, 800e6);
        let at = |pes: usize| {
            sweep
                .iter()
                .find(|(p, _)| p.pes == pes)
                .map(|(_, s)| *s)
                .unwrap()
        };
        // Still gaining from 512 -> 1024 (576 > 512), flat beyond.
        assert!(at(1024) > at(512) * 1.2);
        assert_eq!(at(32768), at(1024));
        // Total speedup 5x (fold count ceil(576/128)=5 -> 1), near the
        // Figure 6 ceiling of ~4.5x.
        assert!((at(1024) - 5.0).abs() < 1e-9, "at(1024) = {}", at(1024));
    }

    #[test]
    fn best_aspect_matches_paper_reports() {
        // §4.5: "the best performing aspect ratio for the FC layer is 512
        // PEs in one row, and for the ConvD layer is 1024 PEs in one
        // column".
        let fc = largest_fc(&zoo::all()).unwrap();
        assert_eq!(best_aspect_for_layer(&fc, 512, 800e6).best_aspect, (1, 512));
        let conv = largest_conv(&zoo::all()).unwrap();
        assert_eq!(
            best_aspect_for_layer(&conv, 1024, 800e6).best_aspect,
            (1024, 1)
        );
    }

    #[test]
    fn speedups_are_monotonic_nondecreasing() {
        let fc = largest_fc(&zoo::all()).unwrap();
        let sweep = pe_sweep(&fc, &BUDGETS, 800e6);
        for w in sweep.windows(2) {
            assert!(w[1].1 >= w[0].1, "{:?}", w);
        }
    }

    #[test]
    fn first_budget_is_baseline() {
        let fc = largest_fc(&zoo::all()).unwrap();
        let sweep = pe_sweep(&fc, &BUDGETS, 800e6);
        assert!((sweep[0].1 - 1.0).abs() < 1e-12);
    }
}
