//! The controller's top-K sorter (§4.3).
//!
//! "To support top-K sorting, the controller is equipped with a priority
//! queue ... implemented with the help of a sorted tag array and mapping
//! table. The mapping table is indexed with a tag and each entry consists
//! of an accuracy value and feature ID. When the systolic array computes a
//! similarity score, the controller does a binary search on the tag array
//! ... all entries with a lower priority are shifted down by one, the last
//! element is dropped and its tag is given to the new entry."
//!
//! This module implements exactly that structure (functionally) plus a
//! cycle-cost model: a binary search over the tag array followed by a tag
//! shift.

use serde::{Deserialize, Serialize};

/// One mapping-table entry: a similarity score and the feature it belongs
/// to.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScoredFeature {
    /// Similarity score (higher = better match).
    pub score: f32,
    /// Feature identifier (the paper's `ObjectID` holds the physical
    /// address of the feature vector; we carry the logical feature index).
    pub feature_id: u64,
}

/// Hardware-style top-K priority queue: sorted tag array + mapping table.
#[derive(Debug, Clone)]
pub struct TopKSorter {
    k: usize,
    /// Tags sorted by descending score. `tags[i]` indexes `table`.
    tags: Vec<usize>,
    /// Unordered mapping table (tag → entry).
    table: Vec<ScoredFeature>,
    /// Cycle cost accumulated across insertions.
    cycles: u64,
    /// Total insertion attempts.
    inserts: u64,
}

impl TopKSorter {
    /// Creates a sorter retaining the `k` highest-scoring entries.
    ///
    /// `k == 0` is a valid degenerate capacity: every offer is rejected
    /// and [`TopKSorter::ranked`] stays empty. (The wire protocol lets a
    /// host submit `k = 0`; the device must degrade, not abort.)
    pub fn new(k: usize) -> Self {
        TopKSorter {
            k,
            tags: Vec::with_capacity(k),
            table: Vec::with_capacity(k),
            cycles: 0,
            inserts: 0,
        }
    }

    /// Capacity K.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Current entry count (≤ K).
    pub fn len(&self) -> usize {
        self.tags.len()
    }

    /// Whether the sorter holds no entries.
    pub fn is_empty(&self) -> bool {
        self.tags.is_empty()
    }

    /// Offers a scored feature; keeps it only if it ranks in the top K.
    /// Returns `true` if the entry was retained.
    ///
    /// Entries are ordered by descending score with ties broken by
    /// ascending feature id. That total order makes the retained set (and
    /// its ranking) a function of the offered *set* alone, independent of
    /// arrival order — which is what lets the parallel sharded scan merge
    /// per-channel sorters into a result bit-identical to a serial scan.
    pub fn offer(&mut self, score: f32, feature_id: u64) -> bool {
        self.inserts += 1;
        // Binary search on the (descending) tag array.
        let pos = self.tags.partition_point(|&t| {
            let e = self.table[t];
            e.score > score || (e.score == score && e.feature_id < feature_id)
        });
        self.cycles += (self.tags.len().max(1) as f64).log2().ceil() as u64 + 1;
        if pos >= self.k {
            return false; // score too low for the table (or k == 0)
        }
        let entry = ScoredFeature { score, feature_id };
        if self.tags.len() < self.k {
            // Allocate a fresh tag.
            let tag = self.table.len();
            self.table.push(entry);
            self.tags.insert(pos, tag);
            self.cycles += (self.tags.len() - pos) as u64; // shift cost
        } else {
            // Drop the lowest entry; reuse its tag for the new entry.
            let recycled = self.tags.pop().expect("k > 0");
            self.table[recycled] = entry;
            self.tags.insert(pos, recycled);
            self.cycles += (self.tags.len() - pos) as u64;
        }
        true
    }

    /// The retained entries, highest score first.
    pub fn ranked(&self) -> Vec<ScoredFeature> {
        self.tags.iter().map(|&t| self.table[t]).collect()
    }

    /// The lowest retained score, if the table is full.
    pub fn threshold(&self) -> Option<f32> {
        if self.tags.len() == self.k {
            self.tags.last().map(|&t| self.table[t].score)
        } else {
            None
        }
    }

    /// Modelled controller cycles spent on insertions so far.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Number of `offer` calls so far.
    pub fn inserts(&self) -> u64 {
        self.inserts
    }

    /// Merges another sorter's entries into this one (the query engine's
    /// reduce step, §4.7.1).
    pub fn merge(&mut self, other: &TopKSorter) {
        for e in other.ranked() {
            self.offer(e.score, e.feature_id);
        }
    }
}

/// Analytic average cycle cost per offered score for a capacity-K sorter
/// (used by the timing model without materializing scores): a binary
/// search (`log2 K + 1`) plus the expected shift for accepted entries.
/// `accept_rate` is the fraction of offers that land in the table.
pub fn expected_cycles_per_offer(k: usize, accept_rate: f64) -> f64 {
    let search = (k.max(1) as f64).log2().ceil() + 1.0;
    let shift = accept_rate * (k as f64 / 2.0);
    search + shift
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_the_best_k() {
        let mut s = TopKSorter::new(3);
        for (i, score) in [0.1, 0.9, 0.5, 0.7, 0.2, 0.95].iter().enumerate() {
            s.offer(*score, i as u64);
        }
        let ranked = s.ranked();
        let ids: Vec<u64> = ranked.iter().map(|e| e.feature_id).collect();
        assert_eq!(ids, vec![5, 1, 3]);
        assert_eq!(ranked[0].score, 0.95);
        assert_eq!(s.threshold(), Some(0.7));
    }

    #[test]
    fn rejects_scores_below_threshold_once_full() {
        let mut s = TopKSorter::new(2);
        assert!(s.offer(0.5, 0));
        assert!(s.offer(0.6, 1));
        assert!(!s.offer(0.4, 2));
        assert!(s.offer(0.55, 3));
        let ids: Vec<u64> = s.ranked().iter().map(|e| e.feature_id).collect();
        assert_eq!(ids, vec![1, 3]);
    }

    #[test]
    fn matches_naive_sort_on_random_input() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let scores: Vec<f32> = (0..500).map(|_| rng.gen_range(0.0..1.0)).collect();
        let mut s = TopKSorter::new(10);
        for (i, &sc) in scores.iter().enumerate() {
            s.offer(sc, i as u64);
        }
        let mut naive: Vec<(f32, u64)> = scores
            .iter()
            .enumerate()
            .map(|(i, &sc)| (sc, i as u64))
            .collect();
        naive.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
        naive.truncate(10);
        let got: Vec<(f32, u64)> = s.ranked().iter().map(|e| (e.score, e.feature_id)).collect();
        assert_eq!(got, naive);
    }

    #[test]
    fn ties_rank_by_ascending_feature_id() {
        // Equal scores order by feature id — regardless of arrival order,
        // so a merged parallel scan ranks ties exactly like a serial one.
        let mut s = TopKSorter::new(3);
        s.offer(0.5, 0);
        s.offer(0.5, 1);
        s.offer(0.5, 2);
        let ids: Vec<u64> = s.ranked().iter().map(|e| e.feature_id).collect();
        assert_eq!(ids, vec![0, 1, 2]);

        let mut rev = TopKSorter::new(3);
        rev.offer(0.5, 2);
        rev.offer(0.5, 0);
        rev.offer(0.5, 1);
        assert_eq!(rev.ranked(), s.ranked());
    }

    #[test]
    fn tied_score_with_lower_id_evicts_higher_id() {
        let mut s = TopKSorter::new(2);
        s.offer(0.5, 7);
        s.offer(0.5, 9);
        assert!(s.offer(0.5, 3), "lower id outranks tied higher ids");
        let ids: Vec<u64> = s.ranked().iter().map(|e| e.feature_id).collect();
        assert_eq!(ids, vec![3, 7]);
        // A tied id above every retained one is rejected.
        assert!(!s.offer(0.5, 8));
    }

    #[test]
    fn merge_combines_partial_results() {
        let mut a = TopKSorter::new(2);
        a.offer(0.9, 0);
        a.offer(0.1, 1);
        let mut b = TopKSorter::new(2);
        b.offer(0.8, 2);
        b.offer(0.7, 3);
        a.merge(&b);
        let ids: Vec<u64> = a.ranked().iter().map(|e| e.feature_id).collect();
        assert_eq!(ids, vec![0, 2]);
    }

    #[test]
    fn cycle_model_accumulates() {
        let mut s = TopKSorter::new(8);
        for i in 0..100 {
            s.offer(i as f32 / 100.0, i);
        }
        assert!(s.cycles() > 0);
        assert_eq!(s.inserts(), 100);
        // Ascending scores: every offer is accepted, so cycles include
        // shifts as well as searches.
        assert!(s.cycles() > 100);
    }

    #[test]
    fn expected_cycles_is_reasonable() {
        let e = expected_cycles_per_offer(10, 0.0);
        assert!((e - 5.0).abs() < 1e-9); // ceil(log2 10) + 1
        assert!(expected_cycles_per_offer(10, 1.0) > e);
    }

    // `k == 0` used to panic in the constructor; it is now a valid
    // degenerate capacity so a hostile wire command `query { k: 0 }`
    // cannot abort the device.
    #[test]
    fn zero_k_accepts_nothing() {
        let mut s = TopKSorter::new(0);
        assert!(!s.offer(0.9, 1));
        assert!(s.ranked().is_empty());
        assert!(s.is_empty());
        assert_eq!(s.threshold(), None);
        assert_eq!(s.inserts(), 1);
    }

    #[test]
    fn k_larger_than_stream_keeps_everything() {
        let mut s = TopKSorter::new(100);
        for (i, score) in [0.3, 0.1, 0.9].iter().enumerate() {
            assert!(s.offer(*score, i as u64));
        }
        let ids: Vec<u64> = s.ranked().iter().map(|e| e.feature_id).collect();
        assert_eq!(ids, vec![2, 0, 1]);
        assert_eq!(s.threshold(), None, "table never fills");
    }

    #[test]
    fn merging_empty_sorters_is_identity() {
        let mut a = TopKSorter::new(3);
        a.offer(0.4, 1);
        let before = a.ranked();
        a.merge(&TopKSorter::new(3));
        assert_eq!(a.ranked(), before);
        // And merging *into* an empty sorter copies the other side.
        let mut empty = TopKSorter::new(3);
        empty.merge(&a);
        assert_eq!(empty.ranked(), before);
    }

    #[test]
    fn merge_order_does_not_matter() {
        // The reduce step must be deterministic whatever order shards
        // finish in: merge three shard sorters in every permutation and
        // demand identical rankings, including tied scores.
        let shard_data: [&[(f32, u64)]; 3] = [
            &[(0.9, 0), (0.5, 3), (0.5, 6)],
            &[(0.5, 1), (0.2, 4)],
            &[(0.9, 2), (0.5, 5), (0.1, 8)],
        ];
        let shards: Vec<TopKSorter> = shard_data
            .iter()
            .map(|entries| {
                let mut s = TopKSorter::new(4);
                for &(score, id) in *entries {
                    s.offer(score, id);
                }
                s
            })
            .collect();
        let permutations = [
            [0, 1, 2],
            [0, 2, 1],
            [1, 0, 2],
            [1, 2, 0],
            [2, 0, 1],
            [2, 1, 0],
        ];
        let mut results = permutations.iter().map(|perm| {
            let mut merged = TopKSorter::new(4);
            for &i in perm {
                merged.merge(&shards[i]);
            }
            merged.ranked()
        });
        let first = results.next().unwrap();
        let ids: Vec<u64> = first.iter().map(|e| e.feature_id).collect();
        assert_eq!(ids, vec![0, 2, 1, 3], "score desc, ties by id asc");
        for r in results {
            assert_eq!(r, first);
        }
    }

    #[test]
    fn empty_state_is_consistent() {
        let s = TopKSorter::new(4);
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert_eq!(s.threshold(), None);
        assert!(s.ranked().is_empty());
    }
}
