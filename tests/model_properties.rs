//! Property-based tests on the timing and energy models: the scan-time
//! and energy functions must respect basic physical monotonicities for
//! *any* workload in range, not just the five paper applications.

use deepstore::core::accel::{channel_level_scan, scan, ScanWorkload};
use deepstore::core::{AcceleratorLevel, DeepStoreConfig};
use deepstore::flash::layout::{DbLayout, Placement};
use deepstore::nn::{Activation, LayerShape, MergeOp, ModelBuilder};
use proptest::prelude::*;

/// A small random FC-stack model: dims bounded so scans stay cheap.
fn arb_model() -> impl Strategy<Value = deepstore::nn::Model> {
    (2usize..400, 2usize..400, 1usize..300).prop_map(|(feature, hidden, out)| {
        ModelBuilder::new("prop", feature)
            .dense(feature * 2, hidden, Activation::Relu)
            .dense(hidden, out, Activation::Identity)
            .build()
    })
}

fn workload(model: &deepstore::nn::Model, db_bytes: u64, cfg: &DeepStoreConfig) -> ScanWorkload {
    ScanWorkload::from_model(model, db_bytes, cfg)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Scan time is monotone in database size at every level.
    #[test]
    fn scan_time_monotone_in_db_size(model in arb_model(), gib in 1u64..20) {
        let cfg = DeepStoreConfig::paper_default();
        let small = workload(&model, gib * (1 << 30), &cfg);
        let large = workload(&model, (gib + 1) * (1 << 30), &cfg);
        for level in AcceleratorLevel::ALL {
            let (Some(ts), Some(tl)) = (scan(level, &small, &cfg), scan(level, &large, &cfg))
            else { continue };
            prop_assert!(tl.elapsed >= ts.elapsed, "{level}: {} < {}", tl.elapsed, ts.elapsed);
            prop_assert!(tl.counts.macs >= ts.counts.macs);
            prop_assert!(tl.counts.flash_pages >= ts.counts.flash_pages);
        }
    }

    /// More channels never slow a channel-level scan down.
    #[test]
    fn channel_scan_monotone_in_channels(model in arb_model()) {
        let db = 4u64 << 30;
        let mut t_prev = None;
        for channels in [4usize, 8, 16, 32, 64] {
            let mut cfg = DeepStoreConfig::paper_default();
            cfg.ssd.geometry.channels = channels;
            let t = channel_level_scan(&workload(&model, db, &cfg), &cfg).elapsed;
            if let Some(prev) = t_prev {
                prop_assert!(t <= prev, "{channels} channels: {t} > {prev}");
            }
            t_prev = Some(t);
        }
    }

    /// The MAC count of a scan is exactly features x per-comparison MACs,
    /// regardless of level.
    #[test]
    fn scan_macs_are_exact(model in arb_model(), gib in 1u64..8) {
        let cfg = DeepStoreConfig::paper_default();
        let w = workload(&model, gib * (1 << 30), &cfg);
        let expected = w.num_features() * model.total_macs();
        for level in AcceleratorLevel::ALL {
            if let Some(t) = scan(level, &w, &cfg) {
                prop_assert_eq!(t.counts.macs, expected);
            }
        }
    }

    /// Page-aligned layouts never scan faster than packed ones (they read
    /// at least as many pages).
    #[test]
    fn page_aligned_never_faster(model in arb_model(), gib in 1u64..8) {
        let mut packed_cfg = DeepStoreConfig::paper_default();
        packed_cfg.placement = Placement::Packed;
        let mut aligned_cfg = DeepStoreConfig::paper_default();
        aligned_cfg.placement = Placement::PageAligned;
        let db = gib * (1 << 30);
        let tp = channel_level_scan(&workload(&model, db, &packed_cfg), &packed_cfg);
        let ta = channel_level_scan(&workload(&model, db, &aligned_cfg), &aligned_cfg);
        prop_assert!(ta.flash >= tp.flash);
    }

    /// Layout invariants hold for arbitrary (feature size, count) pairs.
    #[test]
    fn layout_footprint_covers_payload(
        feature_bytes in 4usize..200_000,
        features in 0u64..50_000,
    ) {
        for placement in [Placement::Packed, Placement::PageAligned] {
            let l = DbLayout::new(feature_bytes, features, 16 * 1024, placement);
            prop_assert!(l.footprint_bytes() >= l.payload_bytes());
            prop_assert!(l.read_amplification() >= 1.0 - 1e-9);
        }
    }

    /// The energy model is additive: splitting a scan in two halves costs
    /// the same dynamic energy as the whole.
    #[test]
    fn energy_is_additive_in_counts(macs in 0u64..1_000_000, bytes in 0u64..1_000_000) {
        use deepstore::energy::{EnergyModel, SramVariant};
        use deepstore::systolic::AccessCounts;
        let m = EnergyModel::for_scratchpad(512 * 1024, SramVariant::ItrsHp);
        let whole = AccessCounts { macs, sram_read_bytes: bytes, ..Default::default() };
        let half_a = AccessCounts { macs: macs / 2, sram_read_bytes: bytes / 2, ..Default::default() };
        let half_b = AccessCounts {
            macs: macs - macs / 2,
            sram_read_bytes: bytes - bytes / 2,
            ..Default::default()
        };
        let sum = m.energy(&half_a).total_j() + m.energy(&half_b).total_j();
        let direct = m.energy(&whole).total_j();
        prop_assert!((sum - direct).abs() <= 1e-12 * direct.max(1.0));
    }

    /// A dense layer's cycle model is monotone in both dimensions.
    #[test]
    fn fc_cycles_monotone(inf in 1usize..4096, outf in 1usize..4096) {
        use deepstore::systolic::cycles::layer_cycles;
        use deepstore::systolic::{ArrayConfig, Dataflow};
        let arr = ArrayConfig::new(16, 64, 800e6, Dataflow::OutputStationary, 1 << 19);
        let base = LayerShape::Dense { in_features: inf, out_features: outf };
        let wider = LayerShape::Dense { in_features: inf + 1, out_features: outf };
        let taller = LayerShape::Dense { in_features: inf, out_features: outf + 1 };
        prop_assert!(layer_cycles(&wider, &arr) >= layer_cycles(&base, &arr));
        prop_assert!(layer_cycles(&taller, &arr) >= layer_cycles(&base, &arr));
    }
}

#[test]
fn merge_op_does_not_change_scan_plumbing() {
    // Element-wise merges add a pseudo-layer; the scan models must accept
    // both forms.
    let cfg = DeepStoreConfig::paper_default();
    for merge in [
        MergeOp::Concat,
        MergeOp::ElementWise(deepstore::nn::ElementWiseOp::Mul),
    ] {
        let mut b = ModelBuilder::new("m", 64).merge(merge);
        b = match merge {
            MergeOp::Concat => b.dense(128, 32, Activation::Relu),
            _ => b.dense(64, 32, Activation::Relu),
        };
        let model = b.build();
        let w = ScanWorkload::from_model(&model, 1 << 30, &cfg);
        assert!(scan(AcceleratorLevel::Channel, &w, &cfg).is_some());
    }
}
