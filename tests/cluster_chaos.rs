//! Deterministic chaos harness for the replicated multi-drive cluster —
//! the `tests/chaos.rs` machinery lifted one level up, from a single
//! drive's fault pipeline to scatter-gather across a fleet.
//!
//! Each property draws a random cluster scenario — SSD geometry, zoo
//! model, database size (written, then *appended*, so partitions hold
//! multiple extents), drive count N, replication factor R, and a
//! layered fault plan on a victim drive (permanent page faults,
//! retry-safe transients fleet-wide, dead channel/chip, a whole-device
//! outage, or an administrative kill) — and pins the cluster contract:
//!
//! * scatter-gather answers are bit-identical at parallelism 1/2/4/auto
//!   and, at full coverage, bit-identical to a single-device scan of
//!   the same write order (global indices and score bits);
//! * coverage accounting is exact: per-partition `covered + skipped`
//!   sums to the database size and `coverage == covered / total`;
//! * coverage stays 1.0 while fewer than R replicas of any partition
//!   are lost — one dead device never degrades an R >= 2 cluster;
//! * `rebalance()` drops dead replicas, re-replicates from surviving
//!   copies onto healthy drives, and restores the replication factor
//!   whenever a healthy non-hosting drive exists.
//!
//! Failing scenarios are appended to `target/chaos-seeds/<property>.txt`
//! (no shrinking; cases are small by construction) for CI artifact
//! upload, exactly like the single-drive chaos suite.

use deepstore::core::{
    AcceleratorLevel, ClusterDbId, ClusterModelId, ClusterQueryRequest, ClusterQueryResult,
    DeepStore, DeepStoreCluster, DeepStoreConfig, QueryRequest,
};
use deepstore::flash::fault::FaultPlan;
use deepstore::nn::{zoo, Model, ModelGraph, Tensor};
use proptest::prelude::*;

/// Parallelism settings exercised per scenario. `0` means "one worker
/// per host core" (auto).
const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 0];

const APPS: [&str; 3] = ["textqa", "tir", "mir"];

const LEVELS: [AcceleratorLevel; 2] = [AcceleratorLevel::Ssd, AcceleratorLevel::Channel];

/// Ranked hits reduced to comparable bits: `(global_index, score bits)`.
type Ranked = Vec<(u64, u32)>;

/// How the scenario damages the fleet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Outage {
    /// No damage beyond the optional transient layer.
    None,
    /// Administrative kill: queries skip the drive without probing.
    Kill,
    /// Every channel dead — the device answers probes with failures.
    DeadDevice,
    /// One channel dead on the victim.
    DeadChannel,
    /// One chip dead on the victim.
    DeadChip,
    /// Random permanent page faults on the victim (remappable).
    Permanent,
}

/// A fully-derived cluster chaos case.
#[derive(Debug)]
struct Scenario {
    app: &'static str,
    model_seed: u64,
    /// Features in the initial `write_db`.
    n: u64,
    /// Features appended afterwards (multi-extent partitions).
    appended: u64,
    k: usize,
    drives: usize,
    replicas: usize,
    level: AcceleratorLevel,
    channels: usize,
    chips_per_channel: usize,
    pages_per_block: usize,
    victim: usize,
    outage: Outage,
    /// Fleet-wide retry-safe transient layer.
    transient: Option<(f64, u64, u32)>,
    perm_seed: u64,
}

impl Scenario {
    fn total(&self) -> u64 {
        self.n + self.appended
    }
}

/// Early-return check so a violated invariant reports the whole
/// scenario instead of panicking mid-case.
macro_rules! check {
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return Err(format!($($fmt)*));
        }
    };
}

fn chaos_seed_dir() -> std::path::PathBuf {
    let target = std::env::var("CARGO_TARGET_DIR").unwrap_or_else(|_| "target".into());
    std::path::PathBuf::from(target).join("chaos-seeds")
}

fn record_failing_case(property: &str, case: &str, msg: &str) {
    use std::io::Write;
    let dir = chaos_seed_dir();
    std::fs::create_dir_all(&dir).ok();
    let path = dir.join(format!("{property}.txt"));
    if let Ok(mut f) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
    {
        let _ = writeln!(f, "== failing case ==\n{case}\n-- violation --\n{msg}\n");
    }
}

fn run_recorded(property: &str, case_desc: &str, case: impl FnOnce() -> Result<(), String>) {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(case)) {
        Ok(Ok(())) => {}
        Ok(Err(msg)) => {
            record_failing_case(property, case_desc, &msg);
            panic!("{property}: {msg}\n(scenario recorded under target/chaos-seeds/)");
        }
        Err(payload) => {
            let msg = payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
                .unwrap_or_else(|| "non-string panic payload".into());
            record_failing_case(property, case_desc, &format!("panic: {msg}"));
            std::panic::resume_unwind(payload);
        }
    }
}

fn store_config(scn: &Scenario, workers: usize) -> DeepStoreConfig {
    let mut cfg = DeepStoreConfig::small().with_parallelism(workers);
    cfg.ssd.geometry.channels = scn.channels;
    cfg.ssd.geometry.chips_per_channel = scn.chips_per_channel;
    cfg.ssd.geometry.pages_per_block = scn.pages_per_block;
    cfg
}

fn features_for(model: &Model, scn: &Scenario) -> (Vec<Tensor>, Vec<Tensor>) {
    let written = (0..scn.n).map(|i| model.random_feature(i)).collect();
    let appended = (0..scn.appended)
        .map(|i| model.random_feature(scn.n + i))
        .collect();
    (written, appended)
}

/// Builds the cluster (write + append so partitions straddle), loads
/// the model, then applies the scenario's damage.
fn fresh_cluster(
    scn: &Scenario,
    workers: usize,
    damaged: bool,
) -> (DeepStoreCluster, Model, ClusterModelId, ClusterDbId) {
    let model = zoo::by_name(scn.app)
        .expect("known app")
        .seeded_metric(scn.model_seed);
    let mut cluster =
        DeepStoreCluster::with_replication(scn.drives, scn.replicas, store_config(scn, workers));
    let (written, appended) = features_for(&model, scn);
    let db = cluster.write_db(&written).expect("write db");
    cluster.append_db(db, &appended).expect("append db");
    let mid = cluster
        .load_model(&ModelGraph::from_model(&model))
        .expect("load model");
    if damaged {
        apply_damage(&mut cluster, scn);
    }
    (cluster, model, mid, db)
}

fn apply_damage(cluster: &mut DeepStoreCluster, scn: &Scenario) {
    let geometry = store_config(scn, 1).ssd.geometry;
    if let Some((rate, seed, max_fail)) = scn.transient {
        // Retry-safe (max_fail <= 3 within the default 4-attempt
        // ladder): costs latency, never coverage — on every drive.
        for d in 0..scn.drives {
            cluster.inject_faults(
                d,
                FaultPlan::none()
                    .transient(rate, seed ^ d as u64)
                    .transient_max_failures(max_fail),
            );
        }
    }
    match scn.outage {
        Outage::None => {}
        Outage::Kill => cluster.kill_drive(scn.victim),
        Outage::DeadDevice => {
            cluster.inject_faults(scn.victim, FaultPlan::dead_device(&geometry));
        }
        Outage::DeadChannel => {
            cluster.inject_faults(
                scn.victim,
                FaultPlan::none().dead_channel(scn.perm_seed as usize % scn.channels),
            );
        }
        Outage::DeadChip => {
            cluster.inject_faults(
                scn.victim,
                FaultPlan::none().dead_chip(
                    scn.perm_seed as usize % scn.channels,
                    (scn.perm_seed >> 8) as usize % scn.chips_per_channel,
                ),
            );
        }
        Outage::Permanent => {
            cluster.inject_faults(scn.victim, FaultPlan::random(&geometry, 0.2, scn.perm_seed));
        }
    }
}

fn probe(model: &Model, i: u64) -> Tensor {
    model.random_feature(50_000 + i)
}

/// One cluster query's outcome, reduced to exactly comparable bits.
#[derive(Debug, Clone, PartialEq)]
struct Snap {
    ranked: Ranked,
    coverage_bits: u64,
    degraded: bool,
    /// Per partition: `(serving drive, covered, skipped, failovers)`.
    parts: Vec<(Option<usize>, u64, u64, u32)>,
}

impl Snap {
    fn coverage(&self) -> f64 {
        f64::from_bits(self.coverage_bits)
    }

    fn of(r: &ClusterQueryResult) -> Snap {
        Snap {
            ranked: r
                .top_k
                .iter()
                .map(|h| (h.global_index, h.hit.score.to_bits()))
                .collect(),
            coverage_bits: r.coverage.to_bits(),
            degraded: r.degraded,
            parts: r
                .partitions
                .iter()
                .map(|p| (p.drive, p.covered, p.skipped, p.failovers))
                .collect(),
        }
    }
}

fn run_cluster_batch(
    scn: &Scenario,
    workers: usize,
    damaged: bool,
    batch: u64,
) -> Result<Vec<Snap>, String> {
    let (mut cluster, model, mid, db) = fresh_cluster(scn, workers, damaged);
    let requests: Vec<ClusterQueryRequest> = (0..batch)
        .map(|i| {
            ClusterQueryRequest::new(probe(&model, i), mid, db)
                .k(scn.k)
                .level(scn.level)
        })
        .collect();
    let results = cluster
        .query_batch(&requests)
        .map_err(|e| format!("workers {workers}: cluster batch failed: {e}"))?;
    Ok(results.iter().map(Snap::of).collect())
}

/// The single-device reference: same model, same write order, one
/// drive. Returns the full ranking (k = total) as comparable bits.
fn single_device_full_ranking(scn: &Scenario, batch: u64) -> Vec<Ranked> {
    let model = zoo::by_name(scn.app)
        .expect("known app")
        .seeded_metric(scn.model_seed);
    let mut store = DeepStore::in_memory(store_config(scn, 1));
    store.disable_qc();
    let (written, appended) = features_for(&model, scn);
    let db = store.write_db(&written).expect("write db");
    store.append_db(db, &appended).expect("append db");
    let mid = store
        .load_model(&ModelGraph::from_model(&model))
        .expect("load model");
    (0..batch)
        .map(|i| {
            let req = QueryRequest::new(probe(&model, i), mid, db)
                .k(scn.total() as usize)
                .level(scn.level);
            let qid = store.query(req).expect("reference query");
            store
                .results(qid)
                .expect("reference result")
                .top_k
                .iter()
                .map(|h| (h.feature_index, h.score.to_bits()))
                .collect()
        })
        .collect()
}

/// Per-partition lengths implied by the contiguous-chunk split of the
/// write followed by the append.
fn partition_lens(scn: &Scenario) -> Vec<u64> {
    let chunk = |m: u64, p: u64| m / scn.drives as u64 + u64::from(p < m % scn.drives as u64);
    (0..scn.drives as u64)
        .map(|p| chunk(scn.n, p) + chunk(scn.appended, p))
        .collect()
}

/// Accounting invariants every answered cluster query must satisfy.
fn verify_accounting(scn: &Scenario, snaps: &[Snap], reference: &[Ranked]) -> Result<(), String> {
    let lens = partition_lens(scn);
    for (qi, s) in snaps.iter().enumerate() {
        check!(
            s.parts.len() == scn.drives,
            "query {qi}: {} partition scans for {} partitions",
            s.parts.len(),
            scn.drives
        );
        let mut covered_total = 0u64;
        let mut offerable = 0u64;
        for (pi, &(drive, covered, skipped, _failovers)) in s.parts.iter().enumerate() {
            check!(
                covered + skipped == lens[pi],
                "query {qi} partition {pi}: covered {covered} + skipped {skipped} != len {}",
                lens[pi]
            );
            check!(
                drive.is_some() || covered == 0,
                "query {qi} partition {pi}: no serving drive but covered {covered}"
            );
            covered_total += covered;
            offerable += covered.min(scn.k as u64);
        }
        let cov = covered_total as f64 / scn.total() as f64;
        check!(
            s.coverage_bits == cov.to_bits(),
            "query {qi}: coverage {} != covered/total = {cov}",
            s.coverage()
        );
        check!(
            s.degraded == (covered_total < scn.total()),
            "query {qi}: degraded flag {} disagrees with covered {covered_total}/{}",
            s.degraded,
            scn.total()
        );
        check!(
            s.ranked.len() as u64 == offerable.min(scn.k as u64),
            "query {qi}: top-K length {} != min(k={}, offerable={offerable})",
            s.ranked.len(),
            scn.k
        );
        // Total order: score descending, global index ascending on ties.
        let sorted = s.ranked.windows(2).all(|w| {
            let (a, b) = (f32::from_bits(w[0].1), f32::from_bits(w[1].1));
            a > b || (a == b && w[0].0 < w[1].0)
        });
        check!(sorted, "query {qi}: merged top-K violates the total order");
        // Honest hits: every merged hit appears in the single-device
        // full ranking with the same score bits at the same global
        // index — never an invented or re-keyed hit.
        let full: std::collections::HashSet<(u64, u32)> = reference[qi].iter().copied().collect();
        for &hit in &s.ranked {
            check!(
                full.contains(&hit),
                "query {qi}: cluster hit {hit:?} absent from the single-device ranking"
            );
        }
        // Full coverage means the answer IS the single-device top-K.
        if s.coverage() == 1.0 {
            check!(
                s.ranked[..] == reference[qi][..s.ranked.len()],
                "query {qi}: full-coverage answer differs from the single-device scan"
            );
        }
    }
    Ok(())
}

/// Failovers a single whole-device outage must cause per query:
/// replicas are tried in order and the first full-coverage scan wins,
/// so only the partition whose *primary* replica (drive `p`) is the
/// victim ever routes around it — partitions where the victim holds a
/// secondary copy never probe it.
fn expected_failovers(scn: &Scenario, p: usize) -> usize {
    usize::from(p == scn.victim)
}

/// The full cluster chaos case.
fn cluster_case(scn: &Scenario) -> Result<(), String> {
    let batch = 2u64;
    let reference = single_device_full_ranking(scn, batch);

    // Phase 1: the healthy cluster equals the single-device scan,
    // bit-identically, at every parallelism.
    let mut healthy: Option<Vec<Snap>> = None;
    for workers in WORKER_COUNTS {
        let snaps = run_cluster_batch(scn, workers, false, batch)?;
        verify_accounting(scn, &snaps, &reference)?;
        for (qi, s) in snaps.iter().enumerate() {
            check!(
                s.coverage() == 1.0 && !s.degraded,
                "query {qi}: healthy cluster below full coverage ({})",
                s.coverage()
            );
        }
        match &healthy {
            None => healthy = Some(snaps),
            Some(base) => check!(
                base == &snaps,
                "workers {workers}: healthy results differ from the serial run"
            ),
        }
    }

    // Phase 2: the damaged cluster keeps its books straight, answers
    // identically at every parallelism, and — while fewer than R
    // replicas of every partition are lost — stays at coverage 1.0
    // with the exact single-device answer.
    let mut damaged: Option<Vec<Snap>> = None;
    for workers in WORKER_COUNTS {
        let snaps = run_cluster_batch(scn, workers, true, batch)?;
        verify_accounting(scn, &snaps, &reference)?;
        match &damaged {
            None => damaged = Some(snaps),
            Some(base) => check!(
                base == &snaps,
                "workers {workers}: damaged results differ from the serial run"
            ),
        }
    }
    let damaged = damaged.expect("at least one worker count ran");
    let whole_device = matches!(scn.outage, Outage::Kill | Outage::DeadDevice);
    if whole_device && scn.replicas >= 2 {
        for (qi, s) in damaged.iter().enumerate() {
            check!(
                s.coverage() == 1.0 && !s.degraded,
                "query {qi}: lost 1 < R = {} replicas but coverage fell to {}",
                scn.replicas,
                s.coverage()
            );
            check!(
                s.ranked[..] == reference[qi][..s.ranked.len()],
                "query {qi}: failover changed the answer"
            );
            let failovers: u32 = s.parts.iter().map(|&(_, _, _, f)| f).sum();
            let expected: usize = (0..scn.drives).map(|p| expected_failovers(scn, p)).sum();
            check!(
                failovers as usize == expected,
                "query {qi}: {failovers} failovers, expected {expected}"
            );
            for (pi, &(drive, _, _, _)) in s.parts.iter().enumerate() {
                check!(
                    drive != Some(scn.victim),
                    "query {qi} partition {pi}: still served by the dead drive"
                );
            }
        }
    }
    if scn.outage == Outage::None && scn.transient.is_some() {
        // Retry-safe transients are invisible at the cluster level too.
        check!(
            damaged == healthy.expect("phase 1 ran"),
            "retry-safe transient faults changed the cluster's answers"
        );
    }

    // Phase 3: rebalance drops dead replicas, re-replicates, and the
    // cluster answers identically across parallelism afterwards —
    // bit-identical to the single-device scan when replication
    // recovered fully.
    let (mut cluster, model, mid, db) = fresh_cluster(scn, 1, true);
    let report = cluster
        .rebalance()
        .map_err(|e| format!("rebalance failed: {e}"))?;
    check!(
        report.partitions == scn.drives as u64,
        "rebalance saw {} partitions, cluster has {}",
        report.partitions,
        scn.drives
    );
    check!(
        report.min_replication <= report.max_replication,
        "rebalance reports min {} > max {}",
        report.min_replication,
        report.max_replication
    );
    check!(
        report.re_replicated == 0 || report.moved_bytes > 0,
        "{} re-replications moved no bytes",
        report.re_replicated
    );
    if whole_device && scn.drives > scn.replicas {
        // A healthy non-hosting drive exists for every partition the
        // victim held: replication must come back to R.
        check!(
            report.fully_replicated(scn.replicas),
            "rebalance left replication at {} (target {}): {report:?}",
            report.min_replication,
            scn.replicas
        );
        let replication = cluster
            .replication(db)
            .map_err(|e| format!("replication query failed: {e}"))?;
        check!(
            replication.iter().all(|&r| r == scn.replicas),
            "per-partition replication {replication:?} != {} everywhere",
            scn.replicas
        );
    }
    if report.fully_replicated(scn.replicas) {
        let requests: Vec<ClusterQueryRequest> = (0..batch)
            .map(|i| {
                ClusterQueryRequest::new(probe(&model, i), mid, db)
                    .k(scn.k)
                    .level(scn.level)
            })
            .collect();
        let results = cluster
            .query_batch(&requests)
            .map_err(|e| format!("post-rebalance batch failed: {e}"))?;
        let snaps: Vec<Snap> = results.iter().map(Snap::of).collect();
        verify_accounting(scn, &snaps, &reference)?;
        for (qi, s) in snaps.iter().enumerate() {
            check!(
                s.coverage() == 1.0,
                "query {qi}: coverage {} after a full rebalance",
                s.coverage()
            );
            check!(
                s.ranked[..] == reference[qi][..s.ranked.len()],
                "query {qi}: post-rebalance answer differs from the single-device scan"
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random geometry × N drives × R replicas × layered fault plans:
    /// exact coverage accounting, bit-identical scatter-gather at
    /// parallelism 1/2/4/auto, coverage 1.0 while fewer than R replicas
    /// are lost, and post-rebalance restoration of the replication
    /// factor.
    #[test]
    fn cluster_chaos_invariants(
        (app_idx, model_seed, n, appended, k, level_idx) in
            (0usize..3, 0u64..1_000_000, 12u64..40, 0u64..14, 1usize..7, 0usize..2),
        (drives, replica_sel, channels, chips_per_channel, ppb_sel) in
            (2usize..=4, 0usize..3, 2usize..=4, 1usize..=2, 0usize..2),
        (victim_sel, outage_sel, transient_on, tr_pct, t_seed, perm_seed) in
            (0usize..4, 0usize..6, any::<bool>(), 1u32..=40, 0u64..1_000_000, 0u64..1_000_000),
    ) {
        let replicas = 1 + replica_sel % drives.min(3);
        let scn = Scenario {
            app: APPS[app_idx],
            model_seed,
            n: n.max(drives as u64),
            appended,
            k,
            drives,
            replicas,
            level: LEVELS[level_idx],
            channels,
            chips_per_channel,
            pages_per_block: [8, 16][ppb_sel],
            victim: victim_sel % drives,
            outage: [
                Outage::None,
                Outage::Kill,
                Outage::DeadDevice,
                Outage::DeadChannel,
                Outage::DeadChip,
                Outage::Permanent,
            ][outage_sel],
            transient: transient_on
                .then(|| (f64::from(tr_pct) / 100.0, t_seed, 1 + (t_seed % 3) as u32)),
            perm_seed,
        };
        let desc = format!("{scn:#?}");
        run_recorded("cluster_chaos_invariants", &desc, || cluster_case(&scn));
    }
}

/// The acceptance scenario, pinned as a plain test: a 4-drive, 2-way
/// replicated cluster survives a *full* device outage with coverage 1.0
/// and a bit-identical top-K at parallelism 1, 2, 4 and auto, and
/// `rebalance()` restores 2x replication.
#[test]
fn four_drive_cluster_survives_dead_device_at_full_coverage() {
    let scn = Scenario {
        app: "textqa",
        model_seed: 4242,
        n: 37,
        appended: 11,
        k: 6,
        drives: 4,
        replicas: 2,
        level: AcceleratorLevel::Channel,
        channels: 4,
        chips_per_channel: 2,
        pages_per_block: 16,
        victim: 1,
        outage: Outage::DeadDevice,
        transient: None,
        perm_seed: 7,
    };
    let desc = format!("{scn:#?}");
    run_recorded(
        "four_drive_cluster_survives_dead_device_at_full_coverage",
        &desc,
        || {
            let reference = single_device_full_ranking(&scn, 2);
            let mut base: Option<Vec<Snap>> = None;
            for workers in WORKER_COUNTS {
                let snaps = run_cluster_batch(&scn, workers, true, 2)?;
                verify_accounting(&scn, &snaps, &reference)?;
                for (qi, s) in snaps.iter().enumerate() {
                    check!(
                        s.coverage() == 1.0 && !s.degraded,
                        "query {qi} workers {workers}: coverage {} after losing one of two \
                         replicas",
                        s.coverage()
                    );
                    check!(
                        s.ranked[..] == reference[qi][..s.ranked.len()],
                        "query {qi} workers {workers}: answer differs from the single-device scan"
                    );
                }
                match &base {
                    None => base = Some(snaps),
                    Some(b) => check!(b == &snaps, "workers {workers}: answers differ"),
                }
            }
            // The administrative-kill flavor of the same outage behaves
            // identically (same coverage, same bits, same failovers).
            let kill_scn = Scenario {
                outage: Outage::Kill,
                ..scn
            };
            let killed = run_cluster_batch(&kill_scn, 1, true, 2)?;
            check!(
                Some(&killed) == base.as_ref(),
                "kill_drive and a dead-device fault plan disagree"
            );

            let (mut cluster, _, _, db) = fresh_cluster(&scn, 1, true);
            let report = cluster.rebalance().map_err(|e| format!("rebalance: {e}"))?;
            check!(
                report.dropped_replicas == 2 && report.re_replicated == 2,
                "dead device drops and re-replicates its 2 hosted replicas, got {report:?}"
            );
            check!(
                report.fully_replicated(2),
                "replication not restored to 2: {report:?}"
            );
            check!(report.moved_bytes > 0, "re-replication moved no bytes");
            let replication = cluster.replication(db).map_err(|e| e.to_string())?;
            check!(
                replication == vec![2; 4],
                "per-partition replication {replication:?} != 2 everywhere"
            );
            Ok(())
        },
    );
}

/// Coverage semantics when R replicas ARE lost: killing both drives
/// that hold a partition's copies degrades honestly — exact coverage,
/// a `None` serving drive for the dead partition, and the surviving
/// features ranked in single-device order.
#[test]
fn losing_all_replicas_of_a_partition_degrades_honestly() {
    let scn = Scenario {
        app: "tir",
        model_seed: 99,
        n: 30,
        appended: 9,
        k: 5,
        drives: 3,
        replicas: 2,
        level: AcceleratorLevel::Ssd,
        channels: 2,
        chips_per_channel: 2,
        pages_per_block: 8,
        victim: 0,
        outage: Outage::Kill,
        transient: None,
        perm_seed: 0,
    };
    let desc = format!("{scn:#?}");
    run_recorded(
        "losing_all_replicas_of_a_partition_degrades_honestly",
        &desc,
        || {
            let reference = single_device_full_ranking(&scn, 1);
            let (mut cluster, model, mid, db) = fresh_cluster(&scn, 1, true);
            // Partition 0's replicas live on drives 0 and 1; killing
            // both loses it entirely. Partitions 1 (drives 1, 2) and 2
            // (drives 2, 0) keep their copies on drive 2.
            cluster.kill_drive(1);
            let r = cluster
                .query(
                    ClusterQueryRequest::new(probe(&model, 0), mid, db)
                        .k(scn.k)
                        .level(scn.level),
                )
                .map_err(|e| e.to_string())?;
            let s = Snap::of(&r);
            verify_accounting(&scn, std::slice::from_ref(&s), &reference)?;
            let lens = partition_lens(&scn);
            let expect_cov = (scn.total() - lens[0]) as f64 / scn.total() as f64;
            check!(
                s.coverage_bits == expect_cov.to_bits(),
                "coverage {} != (total - partition 0)/total = {expect_cov}",
                s.coverage()
            );
            check!(s.degraded, "losing a whole partition must degrade");
            check!(
                s.parts[0].0.is_none() && s.parts[0].2 == lens[0],
                "dead partition must report no serving drive and all features skipped: {:?}",
                s.parts[0]
            );
            // Rebalance cannot resurrect it — and says so.
            let report = cluster.rebalance().map_err(|e| e.to_string())?;
            check!(
                report.unrecoverable == 1,
                "exactly partition 0 is unrecoverable: {report:?}"
            );
            check!(
                !report.fully_replicated(scn.replicas),
                "a lost partition cannot count as fully replicated"
            );
            Ok(())
        },
    );
}

/// Cluster telemetry counts what actually happened (obs builds only).
#[test]
fn cluster_metrics_account_for_failovers_and_rebalance() {
    let scn = Scenario {
        app: "textqa",
        model_seed: 11,
        n: 24,
        appended: 6,
        k: 4,
        drives: 3,
        replicas: 2,
        level: AcceleratorLevel::Channel,
        channels: 2,
        chips_per_channel: 1,
        pages_per_block: 8,
        victim: 2,
        outage: Outage::Kill,
        transient: None,
        perm_seed: 0,
    };
    let (mut cluster, model, mid, db) = fresh_cluster(&scn, 1, true);
    let r = cluster
        .query(
            ClusterQueryRequest::new(probe(&model, 0), mid, db)
                .k(scn.k)
                .level(scn.level),
        )
        .unwrap();
    assert_eq!(r.coverage, 1.0);
    let report = cluster.rebalance().unwrap();
    assert!(report.fully_replicated(2));
    if cfg!(feature = "obs") {
        let snap = cluster.metrics_snapshot();
        let counter = |name: &str| snap.counter(name).unwrap_or(0);
        assert_eq!(counter("cluster.queries"), 1);
        assert!(counter("cluster.replica_failovers") >= 1);
        assert_eq!(counter("cluster.rebalances"), 1);
        assert!(counter("cluster.rebalance.moved_bytes") > 0);
        // Fleet metrics fold per-drive engine counters on top.
        let fleet = cluster.fleet_metrics();
        assert!(fleet.counters.len() >= snap.counters.len());
    }
}
