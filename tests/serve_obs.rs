//! End-to-end observability contract for the serving front end.
//!
//! One TCP request must be joinable across every layer: the request id
//! assigned at admission comes back in the response frame, tags the
//! engine's Chrome trace spans, shows up in the per-tenant Prometheus
//! exposition, and survives in the flight recorder's dump. The
//! recorder itself is deterministic under the simulated serve clock —
//! byte-identical dumps at every engine `parallelism` setting — and
//! its error / SLO-breach auto-dump triggers fire exactly once per
//! episode.

use deepstore_core::config::{AcceleratorLevel, DeepStoreConfig};
use deepstore_core::proto::HostClient;
use deepstore_core::serve::{
    channel_transport, serve, ServeClock, ServeConfig, TcpClient, TcpTransport, Transport,
};
use deepstore_core::{DbId, DeepStore, ModelId};
use deepstore_nn::{zoo, ModelGraph, Tensor};
use deepstore_obs::{FlightDump, RequestOutcome};

/// Builds a small in-memory store preloaded with one feature DB and the
/// TextQA similarity model (handles `DbId(1)` / `ModelId(1)`).
fn seeded_store(n: usize, parallelism: usize) -> DeepStore {
    let model = zoo::textqa().seeded(3);
    let features: Vec<Tensor> = (0..n).map(|i| model.random_feature(i as u64)).collect();
    let mut store = DeepStore::in_memory(DeepStoreConfig::small().with_parallelism(parallelism));
    store.disable_qc();
    store.write_db(&features).unwrap();
    store.load_model(&ModelGraph::from_model(&model)).unwrap();
    store
}

fn probe(i: u64) -> Tensor {
    zoo::textqa().seeded(3).random_feature(10_000 + i)
}

/// The ISSUE's tentpole contract: follow one TCP request end to end.
/// The admission-assigned request id is echoed in the response frame,
/// tags the engine trace spans, and appears in the per-tenant metrics
/// page, the server stats, and the flight-recorder dump.
#[test]
fn tcp_request_is_joinable_end_to_end() {
    let mut store = seeded_store(32, 1);
    store.enable_tracing();
    let transport = TcpTransport::bind("127.0.0.1:0").unwrap();
    let addr = transport.endpoint();
    let handle = serve(transport, store, ServeConfig::default());

    let mut host = HostClient::over(TcpClient::connect(&addr).unwrap());
    host.hello("tenant-a").unwrap();
    let (mid, db) = (ModelId(1), DbId(1));

    // A frame sent with request_id 0 gets one assigned at admission —
    // and the assignment is echoed back in the response frame.
    let (qid, rid) = host
        .query_traced(&probe(0), 3, mid, db, AcceleratorLevel::Ssd, false, 0, 0)
        .unwrap();
    assert_ne!(rid, 0, "admission must assign a nonzero request id");
    let results = host.get_results(qid).unwrap();
    assert_eq!(results.top_k.len(), 3);

    // A frame that brings its own id keeps it.
    let (qid2, rid2) = host
        .query_traced(&probe(1), 3, mid, db, AcceleratorLevel::Ssd, false, 777, 0)
        .unwrap();
    assert_eq!(rid2, 777, "caller-supplied request ids pass through");
    host.get_results(qid2).unwrap();

    // The Prometheus page carries admission counters and the tenant's
    // labeled series.
    let page = host.metrics().unwrap();
    assert!(page.contains("# TYPE deepstore_serve_queries_admitted counter"));
    assert!(page.contains("deepstore_serve_queries_admitted 2"));
    assert!(page.contains("deepstore_serve_tenant_accepted{tenant=\"tenant-a\"} 2"));
    if cfg!(feature = "obs") {
        assert!(page.contains("# TYPE deepstore_serve_e2e_ns histogram"));
        assert!(page.contains("deepstore_serve_tenant_e2e_ns_count{tenant=\"tenant-a\"} 2"));
        // The device half of the page is appended to the serve half.
        assert!(page.contains("deepstore_api_queries 2"));
        assert!(page.contains("deepstore_api_tagged_requests 2"));
    }

    // Serve-layer stats ride the same Stats frame as the device's.
    let (device_stats, server) = host.stats_full().unwrap();
    if cfg!(feature = "obs") {
        assert_eq!(device_stats.queries, 2);
    }
    let server = server.expect("a served Stats frame carries ServerStats");
    assert_eq!(server.queries_admitted, 2);
    assert_eq!(server.per_tenant.len(), 1);
    assert_eq!(server.per_tenant[0].client, "tenant-a");
    assert_eq!(server.per_tenant[0].accepted, 2);

    // The flight recorder saw both requests, tagged with their ids.
    let dump: FlightDump = serde_json::from_str(&host.dump().unwrap()).unwrap();
    assert_eq!(dump.reason, "explicit");
    if cfg!(feature = "obs") {
        assert_eq!(dump.total, 2);
        let rids: Vec<u64> = dump.entries.iter().map(|e| e.request_id).collect();
        assert_eq!(rids, vec![rid, 777]);
        assert!(dump
            .entries
            .iter()
            .all(|e| e.tenant == "tenant-a" && e.outcome == RequestOutcome::Ok && e.queries == 1));
    }

    drop(host);
    let (store, stats) = handle.shutdown();
    assert_eq!(stats.queries_admitted, 2);

    // The engine trace is joinable on the same ids: per-request spans
    // carry `request_id`, the coalesced scan group lists them.
    let trace = store.trace_json().expect("tracing stayed enabled");
    assert!(trace.contains(&format!("\"request_id\":{rid}")));
    assert!(trace.contains("\"request_id\":777"));
    assert!(trace.contains("\"request_ids\""));
}

/// Satellite (d): under a simulated serve clock the recorder is fully
/// deterministic — the dump is byte-identical at every engine
/// parallelism setting (1, 2, 4, auto).
#[test]
fn dump_is_byte_identical_across_parallelism() {
    let mut dumps = Vec::new();
    for parallelism in [1usize, 2, 4, 0] {
        let store = seeded_store(32, parallelism);
        let (clock, _time) = ServeClock::manual();
        let (transport, connector) = channel_transport();
        let handle = serve(
            transport,
            store,
            ServeConfig {
                clock,
                ..ServeConfig::default()
            },
        );
        let mut host = HostClient::over(connector.connect().unwrap());
        host.hello("tenant-a").unwrap();
        let (mid, db) = (ModelId(1), DbId(1));
        for i in 0..5 {
            let (qid, _rid) = host
                .query_traced(&probe(i), 3, mid, db, AcceleratorLevel::Ssd, false, 0, 0)
                .unwrap();
            host.get_results(qid).unwrap();
        }
        dumps.push(host.dump().unwrap());
        drop(host);
        handle.shutdown();
    }
    assert!(
        dumps.iter().all(|d| d == &dumps[0]),
        "flight-recorder dumps must be byte-identical across parallelism"
    );
    if cfg!(feature = "obs") {
        let dump: FlightDump = serde_json::from_str(&dumps[0]).unwrap();
        assert_eq!(dump.total, 5);
        assert_eq!(dump.entries.len(), 5);
        // Manual clock pinned at 0: every recorded latency is exactly 0.
        assert!(dump
            .entries
            .iter()
            .all(|e| e.queue_ns == 0 && e.service_ns == 0 && e.e2e_ns == 0));
    }
}

/// Satellite (d): crossing the configured e2e p99 SLO takes exactly one
/// `slo_breach` auto-dump — the latch keeps a sustained breach from
/// dumping per request.
#[cfg(feature = "obs")]
#[test]
fn slo_breach_takes_one_auto_dump() {
    let store = seeded_store(32, 1);
    let (clock, _time) = ServeClock::manual();
    let (transport, connector) = channel_transport();
    let handle = serve(
        transport,
        store,
        ServeConfig {
            clock,
            slo_p99_us: Some(1_000),
            ..ServeConfig::default()
        },
    );
    let mut host = HostClient::over(connector.connect().unwrap());
    host.hello("tenant-a").unwrap();
    let (mid, db) = (ModelId(1), DbId(1));

    // The serve clock is pinned at 0, so e2e latency is exactly the
    // scheduled-arrival lag the client reports. 10 ms >> the 1 ms SLO.
    for i in 0..3 {
        let (qid, _rid) = host
            .query_traced(
                &probe(i),
                3,
                mid,
                db,
                AcceleratorLevel::Ssd,
                false,
                0,
                10_000_000,
            )
            .unwrap();
        host.get_results(qid).unwrap();
    }
    drop(host);

    let dumps = handle.obs().auto_dumps();
    let breaches: Vec<&(String, String)> = dumps
        .iter()
        .filter(|(reason, _)| reason == "slo_breach")
        .collect();
    assert_eq!(
        breaches.len(),
        1,
        "a sustained breach dumps once, not per request"
    );
    let dump: FlightDump = serde_json::from_str(&breaches[0].1).unwrap();
    assert_eq!(dump.reason, "slo_breach");
    assert!(dump.entries.iter().all(|e| e.e2e_ns == 10_000_000));
    handle.shutdown();
}

/// Satellite (d): an error response triggers an automatic `error` dump
/// whose entries record the failed request's outcome.
#[cfg(feature = "obs")]
#[test]
fn error_response_takes_auto_dump() {
    let store = seeded_store(16, 1);
    let (clock, _time) = ServeClock::manual();
    let (transport, connector) = channel_transport();
    let handle = serve(
        transport,
        store,
        ServeConfig {
            clock,
            ..ServeConfig::default()
        },
    );
    let mut host = HostClient::over(connector.connect().unwrap());
    host.hello("tenant-a").unwrap();

    // Unknown model handle: the engine answers with a typed error frame.
    let err = host
        .query_traced(
            &probe(0),
            3,
            ModelId(99),
            DbId(1),
            AcceleratorLevel::Ssd,
            false,
            0,
            0,
        )
        .unwrap_err();
    assert!(format!("{err}").contains("model"));
    drop(host);

    let dumps = handle.obs().auto_dumps();
    assert_eq!(dumps.len(), 1);
    assert_eq!(dumps[0].0, "error");
    let dump: FlightDump = serde_json::from_str(&dumps[0].1).unwrap();
    assert_eq!(dump.reason, "error");
    assert_eq!(dump.entries.len(), 1);
    assert_eq!(dump.entries[0].outcome, RequestOutcome::Error);
    assert_eq!(dump.entries[0].tenant, "tenant-a");

    let stats = handle.shutdown().1;
    assert_eq!(stats.per_tenant.len(), 1);
    assert_eq!(stats.per_tenant[0].errors, 1);
}

/// The runtime recording kill-switch pauses exactly the hot path:
/// requests served while it is off keep their ids and admission
/// counters but leave no flight-recorder entry.
#[cfg(feature = "obs")]
#[test]
fn runtime_toggle_pauses_recording() {
    let store = seeded_store(16, 1);
    let (clock, _time) = ServeClock::manual();
    let (transport, connector) = channel_transport();
    let handle = serve(
        transport,
        store,
        ServeConfig {
            clock,
            ..ServeConfig::default()
        },
    );
    let mut host = HostClient::over(connector.connect().unwrap());
    host.hello("tenant-a").unwrap();
    let (mid, db) = (ModelId(1), DbId(1));
    let ask = |host: &mut HostClient<_>, i: u64| {
        let (qid, rid) = host
            .query_traced(&probe(i), 3, mid, db, AcceleratorLevel::Ssd, false, 0, 0)
            .unwrap();
        host.get_results(qid).unwrap();
        rid
    };

    ask(&mut host, 0);
    handle.obs().set_enabled(false);
    let paused_rid = ask(&mut host, 1);
    assert_ne!(paused_rid, 0, "request ids are functional, not telemetry");
    handle.obs().set_enabled(true);
    ask(&mut host, 2);

    let dump: FlightDump = serde_json::from_str(&host.dump().unwrap()).unwrap();
    assert_eq!(dump.total, 2, "the paused request left no recorder entry");
    let rids: Vec<u64> = dump.entries.iter().map(|e| e.request_id).collect();
    assert!(!rids.contains(&paused_rid));
    drop(host);
    let stats = handle.shutdown().1;
    assert_eq!(
        stats.queries_admitted, 3,
        "admission counters ignore the switch"
    );
    assert_eq!(stats.per_tenant[0].accepted, 3);
}

/// Satellite (d): the recorder is a fixed-size ring — once `total`
/// passes `recorder_capacity`, a dump holds exactly the newest
/// `capacity` summaries, oldest first.
#[cfg(feature = "obs")]
#[test]
fn recorder_ring_wraps_at_capacity() {
    let store = seeded_store(32, 1);
    let (clock, _time) = ServeClock::manual();
    let (transport, connector) = channel_transport();
    let handle = serve(
        transport,
        store,
        ServeConfig {
            clock,
            recorder_capacity: 4,
            ..ServeConfig::default()
        },
    );
    let mut host = HostClient::over(connector.connect().unwrap());
    host.hello("tenant-a").unwrap();
    let (mid, db) = (ModelId(1), DbId(1));
    for i in 0..6 {
        let (qid, _rid) = host
            .query_traced(&probe(i), 3, mid, db, AcceleratorLevel::Ssd, false, 0, 0)
            .unwrap();
        host.get_results(qid).unwrap();
    }
    let dump: FlightDump = serde_json::from_str(&host.dump().unwrap()).unwrap();
    assert_eq!(dump.capacity, 4);
    assert_eq!(dump.total, 6);
    assert_eq!(
        dump.entries.len(),
        4,
        "the ring keeps only the newest capacity entries"
    );
    let seqs: Vec<u64> = dump.entries.iter().map(|e| e.seq).collect();
    assert_eq!(seqs, vec![2, 3, 4, 5], "oldest first, oldest two evicted");
    drop(host);
    handle.shutdown();
}
