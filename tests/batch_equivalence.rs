//! Equivalence harness for the batched multi-query scan.
//!
//! `DeepStore::query_batch` amortizes one page-sequential flash pass
//! over many queries, but its contract is purely about wall-clock and
//! flash traffic: with the query cache disabled, the ranked results of a
//! batch must be bit-identical to the same requests issued one at a
//! time through `DeepStore::query`, at every parallelism setting, for
//! every zoo model shape, and in the presence of injected read faults.
//! A deterministic companion test pins the flash-traffic claim itself:
//! a batch of B queries issues exactly the page reads of one scan, not
//! B scans.

use deepstore::core::{AcceleratorLevel, DeepStore, DeepStoreConfig, QueryRequest};
use deepstore::flash::fault::FaultPlan;
use deepstore::nn::{zoo, ModelGraph, Tensor};
use proptest::prelude::*;

/// Worker counts exercised against the serial baseline. `0` means "one
/// worker per host core".
const WORKER_COUNTS: [usize; 4] = [2, 4, 8, 0];

const APPS: [&str; 3] = ["textqa", "tir", "mir"];

/// Ranked results for one request, reduced to comparable bits.
type Ranked = Vec<(u64, u32)>;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// `query_batch` is bit-identical to sequential `query` calls with
    /// the cache disabled — per request, at every parallelism setting,
    /// with and without injected flash faults.
    #[test]
    fn query_batch_matches_sequential_at_every_parallelism(
        (app_idx, model_seed, n, k, batch, level_idx, faulted, fault_seed) in (
            0usize..3,
            0u64..1_000_000,
            16u64..48,
            1usize..6,
            2usize..6,
            0usize..2,
            any::<bool>(),
            0u64..1_000_000,
        )
    ) {
        let level = [AcceleratorLevel::Ssd, AcceleratorLevel::Channel][level_idx];
        let run = |workers: usize| -> (Vec<Ranked>, Vec<Ranked>) {
            let model = zoo::by_name(APPS[app_idx])
                .expect("known app")
                .seeded_metric(model_seed);
            let mut store =
                DeepStore::in_memory(DeepStoreConfig::small().with_parallelism(workers));
            store.disable_qc();
            let features: Vec<Tensor> = (0..n).map(|i| model.random_feature(i)).collect();
            let db = store.write_db(&features).unwrap();
            let mid = store.load_model(&ModelGraph::from_model(&model)).unwrap();
            if faulted {
                let geometry = store.config().ssd.geometry;
                store.inject_faults(FaultPlan::random(&geometry, 0.10, fault_seed));
            }
            let requests: Vec<QueryRequest> = (0..batch as u64)
                .map(|i| {
                    QueryRequest::new(model.random_feature(10_000 + i), mid, db)
                        .k(k)
                        .level(level)
                })
                .collect();

            let ranked = |store: &mut DeepStore, qid| -> Ranked {
                store
                    .results(qid)
                    .unwrap()
                    .top_k
                    .iter()
                    .map(|h| (h.feature_index, h.score.to_bits()))
                    .collect()
            };
            let sequential: Vec<Ranked> = requests
                .iter()
                .map(|r| {
                    let qid = store.query(r.clone()).unwrap();
                    ranked(&mut store, qid)
                })
                .collect();
            let batched: Vec<Ranked> = store
                .query_batch(&requests)
                .unwrap()
                .into_iter()
                .map(|qid| ranked(&mut store, qid))
                .collect();
            (sequential, batched)
        };

        let (seq_baseline, batch_baseline) = run(1);
        prop_assert_eq!(&seq_baseline, &batch_baseline);
        for workers in WORKER_COUNTS {
            let (sequential, batched) = run(workers);
            prop_assert_eq!(&seq_baseline, &sequential);
            prop_assert_eq!(&sequential, &batched);
        }
    }
}

/// A batch of B queries issues exactly one page-sequential flash pass:
/// the same page reads as a single query, while B sequential queries
/// cost B passes. tir's 2 KB features divide the 16 KB page evenly, so
/// page reads are exactly countable.
#[test]
fn batched_query_reads_each_page_once() {
    const BATCH: usize = 8;
    let model = zoo::tir().seeded_metric(11);
    let mut store = DeepStore::in_memory(DeepStoreConfig::small());
    store.disable_qc();
    let features: Vec<Tensor> = (0..64).map(|i| model.random_feature(i)).collect();
    let db = store.write_db(&features).unwrap();
    let mid = store.load_model(&ModelGraph::from_model(&model)).unwrap();
    let requests: Vec<QueryRequest> = (0..BATCH as u64)
        .map(|i| QueryRequest::new(model.random_feature(5_000 + i), mid, db).k(4))
        .collect();

    let r0 = store.flash_op_counts().reads;
    store.query(requests[0].clone()).unwrap();
    let r1 = store.flash_op_counts().reads;
    let single_pass = r1 - r0;
    assert!(single_pass > 0, "a scan must read flash pages");

    let qids = store.query_batch(&requests).unwrap();
    let r2 = store.flash_op_counts().reads;
    assert_eq!(
        r2 - r1,
        single_pass,
        "a batch of {BATCH} must cost exactly one pass"
    );
    assert_eq!(qids.len(), BATCH);

    for r in &requests {
        store.query(r.clone()).unwrap();
    }
    let r3 = store.flash_op_counts().reads;
    assert_eq!(
        r3 - r2,
        BATCH as u64 * single_pass,
        "sequential queries re-read the database every time"
    );
}
