//! Reopen round-trip equivalence for the persistent single-file image.
//!
//! The contract under test: a device created, populated and flushed
//! into an mmap image behaves **bit-identically** after `close()` +
//! `open()` to an uninterrupted in-memory run of the same workload —
//! ranked top-K (indices, scores, ObjectIDs), coverage, simulated
//! latency, flash op counters and erase counts — at every parallelism
//! setting, with and without armed fault plans. Crash recovery is
//! exercised for real: a child process aborts between `flush()` and
//! `close()` and the parent recovers the last committed state.

use deepstore::core::{DeepStore, DeepStoreConfig, DeepStoreError, QueryRequest, QueryResult};
use deepstore::flash::fault::FaultPlan;
use deepstore::flash::FlashOpCounts;
use deepstore::nn::{zoo, Model, ModelGraph, Tensor};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// Unique temp path per call without wall-clock or RNG use.
fn temp_image(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "deepstore-persist-{tag}-{}-{}.img",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

struct Cleanup(PathBuf);
impl Drop for Cleanup {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

fn features(model: &Model, n: u64) -> Vec<Tensor> {
    (0..n).map(|i| model.random_feature(i)).collect()
}

fn probes(
    model: &Model,
    mid: deepstore::core::ModelId,
    db: deepstore::core::DbId,
    seeds: &[u64],
    k: usize,
) -> Vec<QueryRequest> {
    seeds
        .iter()
        .map(|&s| QueryRequest::new(model.random_feature(s), mid, db).k(k))
        .collect()
}

struct Outcome {
    results: Vec<QueryResult>,
    counts: FlashOpCounts,
    erases: u64,
}

fn run_queries(store: &mut DeepStore, reqs: &[QueryRequest]) -> Outcome {
    let ids = store.query_batch(reqs).unwrap();
    let results = ids.iter().map(|&q| store.results(q).unwrap()).collect();
    Outcome {
        results,
        counts: store.flash_op_counts(),
        erases: store.stats().flash.erases,
    }
}

/// One workload, twice: uninterrupted on the heap backend, and split
/// across a flush/close/open cycle on the mmap backend. `faults` is
/// re-injected after open (fault plans are per-session, never
/// persisted).
fn assert_reopen_equivalent(
    parallelism: usize,
    initial: u64,
    appended: u64,
    probe_seeds: &[u64],
    faults: Option<&FaultPlan>,
) {
    let cfg = DeepStoreConfig::small().with_parallelism(parallelism);
    let model = zoo::tir().seeded_metric(5);
    let k = 4;

    // Uninterrupted in-memory reference run.
    let mut mem = DeepStore::in_memory(cfg.clone());
    mem.disable_qc();
    let db = mem.write_db(&features(&model, initial)).unwrap();
    if appended > 0 {
        mem.append_db(db, &features(&model, appended)).unwrap();
    }
    let mid = mem.load_model(&ModelGraph::from_model(&model)).unwrap();
    if let Some(plan) = faults {
        mem.inject_faults(plan.clone());
    }
    let reqs = probes(&model, mid, db, probe_seeds, k);
    let expected = run_queries(&mut mem, &reqs);

    // Same workload split across a persistence cycle.
    let path = temp_image("equiv");
    let _cleanup = Cleanup(path.clone());
    let mut store = DeepStore::create(&path, cfg).unwrap();
    store.disable_qc();
    let pdb = store.write_db(&features(&model, initial)).unwrap();
    if appended > 0 {
        store.append_db(pdb, &features(&model, appended)).unwrap();
    }
    let pmid = store.load_model(&ModelGraph::from_model(&model)).unwrap();
    assert_eq!((pdb, pmid), (db, mid), "id counters must line up");
    store.flush().unwrap();
    store.close().unwrap();

    let mut back = DeepStore::open(&path).unwrap();
    back.disable_qc();
    assert!(!back.opened_dirty(), "clean close must reopen clean");
    assert_eq!(back.backend(), "mmap");
    if let Some(plan) = faults {
        back.inject_faults(plan.clone());
    }
    let got = run_queries(&mut back, &reqs);

    assert_eq!(
        got.results, expected.results,
        "top-K, coverage and latency must be bit-identical after reopen \
         (parallelism {parallelism}, {initial}+{appended} features)"
    );
    assert_eq!(
        got.counts, expected.counts,
        "flash op counters must resume exactly"
    );
    assert_eq!(got.erases, expected.erases, "erase counts must match");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Write + append + query equivalence across a reopen, at every
    /// parallelism setting. Feature counts stay page-aligned (tir's
    /// 2 KiB features pack 8 to a page) so append-time and rebuilt
    /// cascade sidecars agree.
    #[test]
    fn reopen_roundtrip_is_bit_identical(
        initial in (2u64..=14).prop_map(|n| n * 8),
        appended in (0u64..=6).prop_map(|n| n * 8),
        seeds in proptest::collection::vec(1000u64..9000, 1..=3),
    ) {
        for parallelism in [1usize, 2, 4, 0] {
            assert_reopen_equivalent(parallelism, initial, appended, &seeds, None);
        }
    }
}

#[test]
fn reopen_roundtrip_with_armed_fault_plans() {
    // Transient faults under the retry ladder: recovered reads, same
    // ranked answers on both sides of the persistence cycle.
    let transient = FaultPlan::none().transient(0.8, 99);
    assert_reopen_equivalent(1, 96, 16, &[2000, 2001], Some(&transient));
    assert_reopen_equivalent(2, 96, 16, &[2000, 2001], Some(&transient));

    // A dead channel degrades coverage identically in both runs.
    let dead = FaultPlan::none().dead_channel(0);
    for parallelism in [1usize, 4, 0] {
        assert_reopen_equivalent(parallelism, 256, 0, &[3000], Some(&dead));
    }
}

/// The equivalence harness also proves heap-vs-mmap backend parity:
/// every `assert_reopen_equivalent` call above compares a heap run to an
/// mmap run. This test pins the cheap invariants directly.
#[test]
fn backend_identities() {
    let cfg = DeepStoreConfig::small();
    let mem = DeepStore::in_memory(cfg.clone());
    // `DEEPSTORE_BACKEND=mmap` redirects in_memory onto an unlinked
    // image, so accept either backend here but pin the persistence flag.
    if mem.backend() == "heap" {
        assert!(!mem.is_persistent());
    } else {
        assert_eq!(mem.backend(), "mmap");
    }

    let path = temp_image("ident");
    let _cleanup = Cleanup(path.clone());
    let store = DeepStore::create(&path, cfg).unwrap();
    assert_eq!(store.backend(), "mmap");
    assert!(store.is_persistent());
    assert!(!store.opened_dirty());
    store.close().unwrap();

    // Create refuses to clobber an existing image.
    let err = DeepStore::create(&path, DeepStoreConfig::small()).unwrap_err();
    assert!(matches!(err, DeepStoreError::Flash(_)));
}

/// A writer process dies between `flush()` and `close()`: the reopen
/// reports a dirty close and serves exactly the flushed state. The
/// child role runs in a separate process (`std::process::abort`), so
/// this is a true cross-process recovery, not a simulated one.
#[test]
fn crash_between_flush_and_close_recovers_flushed_state() {
    const ENV: &str = "DEEPSTORE_CRASH_WRITER";
    if let Ok(path) = std::env::var(ENV) {
        // Child role: create, populate, flush — then die without close.
        let model = zoo::tir().seeded_metric(5);
        let mut store = DeepStore::create(&path, DeepStoreConfig::small()).unwrap();
        let db = store.write_db(&features(&model, 64)).unwrap();
        let mid = store.load_model(&ModelGraph::from_model(&model)).unwrap();
        store.flush().unwrap();
        // Post-flush work that must NOT survive: it is never committed.
        store.append_db(db, &features(&model, 8)).unwrap();
        let _ = (db, mid);
        std::process::abort();
    }

    let path = temp_image("crash");
    let _cleanup = Cleanup(path.clone());
    let exe = std::env::current_exe().unwrap();
    let status = std::process::Command::new(exe)
        .args([
            "--exact",
            "crash_between_flush_and_close_recovers_flushed_state",
            "--nocapture",
        ])
        .env(ENV, path.to_str().unwrap())
        .status()
        .unwrap();
    assert!(!status.success(), "the writer must die by abort");

    let mut store = DeepStore::open(&path).unwrap();
    assert!(store.opened_dirty(), "an aborted writer must reopen dirty");
    // The flushed 64-feature database answers queries; the uncommitted
    // post-flush append is gone.
    let model = zoo::tir().seeded_metric(5);
    let reqs = probes(
        &model,
        deepstore::core::ModelId(1),
        deepstore::core::DbId(1),
        &[0],
        3,
    );
    let ids = store.query_batch(&reqs).unwrap();
    let r = store.results(ids[0]).unwrap();
    // Probe seed 0 duplicates feature 0 exactly: rank 0 must find it.
    assert_eq!(r.top_k[0].feature_index, 0);
    assert_eq!(r.top_k.len(), 3);

    // A crash while merely *open* (dirty flag armed, nothing broken) is
    // also detected on the next open.
    drop(store);
    let store = DeepStore::open(&path).unwrap();
    assert!(
        store.opened_dirty(),
        "open marks the image dirty until closed cleanly"
    );
    store.close().unwrap();
    let store = DeepStore::open(&path).unwrap();
    assert!(!store.opened_dirty(), "clean close clears the dirty flag");
    store.close().unwrap();
}

/// A header rewritten by a future format version is rejected with the
/// typed error, not a parse failure. Both slots get a valid CRC, so the
/// only objection left is the version itself.
#[test]
fn future_image_format_version_is_rejected_typed() {
    fn crc32(bytes: &[u8]) -> u32 {
        let mut table = [0u32; 256];
        for (i, t) in table.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *t = c;
        }
        !bytes.iter().fold(0xFFFF_FFFFu32, |c, &b| {
            table[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8)
        })
    }

    let path = temp_image("version");
    let _cleanup = Cleanup(path.clone());
    let store = DeepStore::create(&path, DeepStoreConfig::small()).unwrap();
    store.close().unwrap();

    // Rewrite both 512-byte header slots: bump the format version
    // (bytes 8..12) and restore a valid CRC over the first 112 bytes at
    // offset 112.
    let mut img = std::fs::read(&path).unwrap();
    for slot in 0..2 {
        let at = slot * 512;
        if &img[at..at + 8] != b"DPSTIMG\0" {
            continue;
        }
        img[at + 8..at + 12].copy_from_slice(&99u32.to_le_bytes());
        let crc = crc32(&img[at..at + 112]);
        img[at + 112..at + 116].copy_from_slice(&crc.to_le_bytes());
    }
    std::fs::write(&path, &img).unwrap();

    let err = DeepStore::open(&path).unwrap_err();
    assert_eq!(
        err,
        DeepStoreError::VersionMismatch {
            expected: deepstore::flash::IMAGE_FORMAT_VERSION,
            found: 99,
        }
    );
}

/// Acceptance-scale round trip: a multi-GiB image built in chunks,
/// flushed, closed and reopened; ranked top-K is bit-identical to the
/// answer computed before the close. Run explicitly (CI persistence
/// job): `cargo test --release -- --ignored multi_gb`.
#[test]
#[ignore = "multi-GiB image; run explicitly with --release -- --ignored"]
fn multi_gb_image_reopen_bit_identical() {
    let mut cfg = DeepStoreConfig::small().with_parallelism(0);
    cfg.qc_capacity = 0;
    // 4 ch × 2 chips × 2 planes × 512 blocks × 64 pages × 16 KiB = 8 GiB.
    cfg.ssd.geometry.blocks_per_plane = 512;
    cfg.ssd.geometry.pages_per_block = 64;

    let path = temp_image("multigb");
    let _cleanup = Cleanup(path.clone());
    let model = zoo::tir().seeded_metric(5);
    let mut store = DeepStore::create(&path, cfg).unwrap();

    // ~1.25 GiB of 2 KiB features, appended in 64 MiB chunks.
    const TOTAL: u64 = 640_000;
    const CHUNK: u64 = 32_768;
    let db = store.write_db(&features(&model, CHUNK)).unwrap();
    let mut written = CHUNK;
    while written < TOTAL {
        let n = CHUNK.min(TOTAL - written);
        let chunk: Vec<Tensor> = (written..written + n)
            .map(|i| model.random_feature(i))
            .collect();
        store.append_db(db, &chunk).unwrap();
        written += n;
    }
    let mid = store.load_model(&ModelGraph::from_model(&model)).unwrap();

    // Query ids are session handles: the persisted `next_query` counter
    // resumes past the pre-close queries (no id reuse), so strip them
    // before comparing the device's actual answers.
    let strip = |mut rs: Vec<QueryResult>| {
        for r in &mut rs {
            r.query_id = deepstore::core::QueryId(0);
        }
        rs
    };
    let reqs = probes(&model, mid, db, &[123_456, 7], 10);
    let ids = store.query_batch(&reqs).unwrap();
    let expected: Vec<QueryResult> = ids.iter().map(|&q| store.results(q).unwrap()).collect();
    let counts = store.flash_op_counts();
    store.flush().unwrap();
    store.close().unwrap();

    let len = std::fs::metadata(&path).unwrap().len();
    assert!(len > 4 << 30, "image must be multi-GiB, got {len} bytes");

    let mut back = DeepStore::open(&path).unwrap();
    assert!(!back.opened_dirty());
    assert_eq!(back.flash_op_counts(), counts);
    let ids = back.query_batch(&reqs).unwrap();
    assert_eq!(
        ids,
        [deepstore::core::QueryId(3), deepstore::core::QueryId(4)]
    );
    let got: Vec<QueryResult> = ids.iter().map(|&q| back.results(q).unwrap()).collect();
    assert_eq!(
        strip(got),
        strip(expected),
        "multi-GiB reopen must be bit-identical"
    );
    back.close().unwrap();
}
