//! Zero steady-state allocations per feature on the mmap read path.
//!
//! `MmapStore::page` hands out slices borrowed straight from the
//! mapping, so a scan's allocation count is a per-query constant
//! (scratch arenas, the top-K heap, thread plumbing) and must not grow
//! with database size. This binary installs a counting global
//! allocator and holds exactly one test, so the measurement window sees
//! no other test's allocations.

use deepstore::core::{DeepStore, DeepStoreConfig, QueryRequest};
use deepstore::nn::{zoo, ModelGraph, Tensor};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

struct CountingAllocator;

static ARMED: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// Allocations during one warmed-up scan of a store.
fn measure(store: &mut DeepStore, req: &QueryRequest) -> u64 {
    // Warm-up: scratch arenas and quant sidecar buffers get sized here.
    let ids = store.query_batch(std::slice::from_ref(req)).unwrap();
    store.results(ids[0]).unwrap();

    ALLOCS.store(0, Ordering::SeqCst);
    ARMED.store(true, Ordering::SeqCst);
    let ids = store.query_batch(std::slice::from_ref(req)).unwrap();
    ARMED.store(false, Ordering::SeqCst);
    store.results(ids[0]).unwrap();
    ALLOCS.load(Ordering::SeqCst)
}

#[test]
fn mmap_scan_allocations_do_not_scale_with_db_size() {
    let dir = std::env::temp_dir();
    let small_path = dir.join(format!("deepstore-alloc-small-{}.img", std::process::id()));
    let large_path = dir.join(format!("deepstore-alloc-large-{}.img", std::process::id()));
    let _ = std::fs::remove_file(&small_path);
    let _ = std::fs::remove_file(&large_path);

    let model = zoo::tir().seeded_metric(5);
    let cfg = DeepStoreConfig::small().with_parallelism(1);
    let build = |path: &std::path::Path, n: u64| -> DeepStore {
        let mut s = DeepStore::create(path, cfg.clone()).unwrap();
        s.disable_qc();
        let fs: Vec<Tensor> = (0..n).map(|i| model.random_feature(i)).collect();
        s.write_db(&fs).unwrap();
        s.load_model(&ModelGraph::from_model(&model)).unwrap();
        s
    };
    let mut small = build(&small_path, 64);
    let mut large = build(&large_path, 512);

    let req = |n: u64| {
        QueryRequest::new(
            model.random_feature(9999),
            deepstore::core::ModelId(1),
            deepstore::core::DbId(1),
        )
        .k(n as usize)
    };
    let small_allocs = measure(&mut small, &req(4));
    let large_allocs = measure(&mut large, &req(4));

    // 8× the features must not mean 8× the allocations: the read path
    // borrows pages from the mapping and reuses its scratch space, so
    // the per-query constant dominates. Generous slack absorbs jitter
    // (hash-map resizes, result publication) without letting a
    // per-feature allocation (≥ 448 extra here) slip through.
    assert!(
        large_allocs <= small_allocs * 2 + 64,
        "scan allocations scale with db size: {small_allocs} for 64 \
         features vs {large_allocs} for 512"
    );

    drop(small);
    drop(large);
    let _ = std::fs::remove_file(&small_path);
    let _ = std::fs::remove_file(&large_path);
}
