//! Equivalence harness for the channel-sharded parallel scan.
//!
//! The scan's contract is that `parallelism` is purely a host wall-clock
//! knob: for any database, query and `k`, the ranked results — ids,
//! scores and order — are bit-identical at every worker count, and so
//! are the simulated latencies the runtime derives from them. These
//! tests drive that contract with randomized inputs (property tests over
//! models, database sizes, `k` and worker counts), with injected read
//! faults, and through the `Runtime`'s latency statistics.

use deepstore_core::config::DeepStoreConfig;
use deepstore_core::engine::{DbId, Engine};
use deepstore_core::runtime::Runtime;
use deepstore_core::{DeepStore, ModelId, QueryRequest};
use deepstore_flash::fault::FaultPlan;
use deepstore_flash::SimDuration;
use deepstore_nn::{zoo, Model, ModelGraph, Tensor};
use proptest::prelude::*;

/// Worker counts exercised against the serial baseline. `0` means "one
/// worker per host core", so it also covers whatever this machine has.
const WORKER_COUNTS: [usize; 4] = [2, 4, 8, 0];

const APPS: [&str; 3] = ["textqa", "tir", "mir"];

/// Builds a sealed engine with `n` random features from `app`'s model.
fn engine_with(app: &str, model_seed: u64, n: u64, parallelism: usize) -> (Engine, Model, DbId) {
    let model = zoo::by_name(app)
        .expect("known app")
        .seeded_metric(model_seed);
    let mut engine = Engine::new(DeepStoreConfig::small().with_parallelism(parallelism));
    let features: Vec<Tensor> = (0..n).map(|i| model.random_feature(i)).collect();
    let db = engine.write_db(&features).unwrap();
    engine.seal_db(db).unwrap();
    (engine, model, db)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random model, database size, query and `k`: every parallel worker
    /// count returns bit-identical ranked results to the serial scan.
    #[test]
    fn parallel_scan_matches_serial(
        (app_idx, model_seed, n, k, q_seed) in (
            0usize..3,
            0u64..1_000_000,
            1u64..48,
            0usize..10,
            0u64..1_000_000,
        )
    ) {
        let (mut engine, model, db) = engine_with(APPS[app_idx], model_seed, n, 1);
        let probe = model.random_feature(q_seed ^ 0x5EED);
        let baseline = engine.scan_top_k(db, &model, &probe, k).unwrap();
        prop_assert_eq!(baseline.len(), k.min(n as usize));

        for workers in WORKER_COUNTS {
            engine.set_parallelism(workers);
            let parallel = engine.scan_top_k(db, &model, &probe, k).unwrap();
            prop_assert_eq!(&baseline, &parallel);
        }
    }

    /// Fault tolerance is part of the contract too: with uncorrectable
    /// reads injected, every worker count skips the same features and
    /// ranks the same survivors.
    #[test]
    fn parallel_scan_matches_serial_under_faults(
        (model_seed, n, fault_seed) in (0u64..1_000_000, 8u64..48, 0u64..1_000_000)
    ) {
        let scan_at = |workers: usize| {
            let (mut engine, model, db) = engine_with("textqa", model_seed, n, workers);
            let geometry = engine.config().ssd.geometry;
            engine.inject_faults(FaultPlan::random(&geometry, 0.10, fault_seed));
            let probe = model.random_feature(model_seed ^ 0xFA017);
            let top = engine.scan_top_k(db, &model, &probe, 6).unwrap();
            (top, engine.unreadable_skipped())
        };

        let (baseline, baseline_skipped) = scan_at(1);
        for workers in WORKER_COUNTS {
            let (parallel, skipped) = scan_at(workers);
            prop_assert_eq!(&baseline, &parallel);
            prop_assert_eq!(baseline_skipped, skipped);
        }
    }
}

/// Builds a runtime over a sealed 64-feature textqa store.
fn runtime_with(parallelism: usize) -> (Runtime, Model, DbId, ModelId) {
    let model = zoo::textqa().seeded(3);
    let mut store = DeepStore::in_memory(DeepStoreConfig::small().with_parallelism(parallelism));
    store.disable_qc();
    let features: Vec<Tensor> = (0..64).map(|i| model.random_feature(i)).collect();
    let db = store.write_db(&features).unwrap();
    let mid = store.load_model(&ModelGraph::from_model(&model)).unwrap();
    (Runtime::new(store), model, db, mid)
}

/// Runtime regression: the per-query records (arrival, start,
/// completion) and aggregate latency percentiles come from the simulated
/// timing model, so they must be identical at every parallelism setting.
#[test]
fn runtime_latencies_identical_across_parallelism() {
    let run_at = |parallelism: usize| {
        let (mut rt, model, db, mid) = runtime_with(parallelism);
        for i in 0..20u64 {
            rt.submit_at(
                SimDuration::from_nanos(i * 50_000),
                QueryRequest::new(model.random_feature(1_000 + i), mid, db).k(5),
            );
        }
        rt.run_to_completion().unwrap();
        let stats = rt.stats().unwrap();
        (rt.records().to_vec(), stats)
    };

    let (baseline_records, baseline_stats) = run_at(1);
    for workers in WORKER_COUNTS {
        let (records, stats) = run_at(workers);
        assert_eq!(
            baseline_records, records,
            "records diverged at parallelism {workers}"
        );
        assert_eq!(baseline_stats.p50_latency, stats.p50_latency);
        assert_eq!(baseline_stats.p95_latency, stats.p95_latency);
        assert_eq!(baseline_stats.p99_latency, stats.p99_latency);
        assert_eq!(baseline_stats.mean_latency, stats.mean_latency);
        assert_eq!(baseline_stats.makespan, stats.makespan);
    }
}
