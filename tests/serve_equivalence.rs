//! Concurrency-equivalence property for the serving front end.
//!
//! N clients hammer one served [`DeepStore`] over the in-process
//! channel transport, each issuing its own sequence of query batches.
//! The server is free to interleave and merge co-pending requests from
//! different clients into shared flash passes — and the property says
//! none of that is observable: every client's every query answers
//! **bit-identically** to the same request issued sequentially through
//! `DeepStore::query_batch` on a fresh store, at parallelism 1/2/4/auto
//! and with layered fault plans armed.
//!
//! Why this should hold (the argument DESIGN.md §9 spells out):
//! `query_batch` validates up front, groups by `(db, model, level)`
//! internally, and answers each request exactly as if issued alone;
//! fault outcomes are deterministic per page read; and the query cache
//! is disabled, so no cross-query state survives. Merging other
//! clients' requests into the same engine pass therefore cannot change
//! anyone's bits. (Wear-out plans are excluded — wear counts reads, so
//! it is genuinely order-dependent; everything else in the fault model
//! is fair game.)
//!
//! Scenario recording mirrors `tests/chaos.rs`: a failing case appends
//! its full scenario to `target/chaos-seeds/<property>.txt`.

use deepstore::core::serve::{channel_transport, serve, ServeConfig};
use deepstore::core::{AcceleratorLevel, DeepStore, DeepStoreConfig, ModelId, QueryRequest};
use deepstore::flash::fault::FaultPlan;
use deepstore::nn::{zoo, Model, ModelGraph, Tensor};
use deepstore_core::engine::DbId;
use deepstore_core::proto::HostClient;
use proptest::prelude::*;
use std::time::Duration;

/// Parallelism settings exercised per scenario (0 = one worker per
/// host core).
const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 0];

const APPS: [&str; 3] = ["textqa", "tir", "mir"];

const LEVELS: [AcceleratorLevel; 2] = [AcceleratorLevel::Ssd, AcceleratorLevel::Channel];

/// One query's outcome reduced to exactly comparable bits.
#[derive(Debug, Clone, PartialEq)]
struct Snap {
    ranked: Vec<(u64, u32)>,
    skipped: u64,
    coverage_bits: u64,
    degraded: bool,
}

fn snap(r: &deepstore::core::QueryResult) -> Snap {
    Snap {
        ranked: r
            .top_k
            .iter()
            .map(|h| (h.feature_index, h.score.to_bits()))
            .collect(),
        skipped: r.skipped,
        coverage_bits: r.coverage.to_bits(),
        degraded: r.degraded,
    }
}

#[derive(Debug)]
struct Scenario {
    app: &'static str,
    model_seed: u64,
    n: u64,
    k: usize,
    level: AcceleratorLevel,
    clients: usize,
    batches_per_client: usize,
    reqs_per_batch: usize,
    batch_window: bool,
    plan: FaultPlan,
}

macro_rules! check {
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return Err(format!($($fmt)*));
        }
    };
}

fn record_failing_case(property: &str, case: &str, msg: &str) {
    use std::io::Write;
    let target = std::env::var("CARGO_TARGET_DIR").unwrap_or_else(|_| "target".into());
    let dir = std::path::PathBuf::from(target).join("chaos-seeds");
    std::fs::create_dir_all(&dir).ok();
    if let Ok(mut f) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(dir.join(format!("{property}.txt")))
    {
        let _ = writeln!(f, "== failing case ==\n{case}\n-- violation --\n{msg}\n");
    }
}

fn run_recorded(property: &str, case_desc: &str, case: impl FnOnce() -> Result<(), String>) {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(case)) {
        Ok(Ok(())) => {}
        Ok(Err(msg)) => {
            record_failing_case(property, case_desc, &msg);
            panic!("{property}: {msg}\n(scenario recorded under target/chaos-seeds/)");
        }
        Err(payload) => {
            let msg = payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
                .unwrap_or_else(|| "non-string panic payload".into());
            record_failing_case(property, case_desc, &format!("panic: {msg}"));
            std::panic::resume_unwind(payload);
        }
    }
}

/// Builds a store with the scenario's data and (faulted) plan. Query
/// cache disabled: similarity-based caching is legitimately
/// interleaving-sensitive, so equivalence is stated for the uncached
/// engine.
fn fresh_store(scn: &Scenario, workers: usize) -> (DeepStore, Model, ModelId, DbId) {
    let model = zoo::by_name(scn.app)
        .expect("known app")
        .seeded_metric(scn.model_seed);
    let mut store = DeepStore::in_memory(DeepStoreConfig::small().with_parallelism(workers));
    store.disable_qc();
    let features: Vec<Tensor> = (0..scn.n).map(|i| model.random_feature(i)).collect();
    let db = store.write_db(&features).expect("write db");
    let mid = store
        .load_model(&ModelGraph::from_model(&model))
        .expect("load model");
    store.inject_faults(scn.plan.clone());
    (store, model, mid, db)
}

/// Deterministic probe for (client, batch, request).
fn probe(model: &Model, client: usize, batch: usize, req: usize) -> Tensor {
    model.random_feature(10_000 + (client as u64) * 1_000 + (batch as u64) * 100 + req as u64)
}

/// The requests client `c` issues, batch by batch.
fn client_requests(
    scn: &Scenario,
    model: &Model,
    mid: ModelId,
    db: DbId,
    c: usize,
) -> Vec<Vec<QueryRequest>> {
    (0..scn.batches_per_client)
        .map(|b| {
            (0..scn.reqs_per_batch)
                .map(|r| {
                    QueryRequest::new(probe(model, c, b, r), mid, db)
                        .k(scn.k)
                        .level(scn.level)
                })
                .collect()
        })
        .collect()
}

/// Sequential reference: every client's batches through the direct
/// API, one at a time, on a fresh store.
fn sequential_reference(scn: &Scenario) -> Result<Vec<Vec<Vec<Snap>>>, String> {
    let (mut store, model, mid, db) = fresh_store(scn, 1);
    let mut all = Vec::with_capacity(scn.clients);
    for c in 0..scn.clients {
        let mut batches = Vec::with_capacity(scn.batches_per_client);
        for reqs in client_requests(scn, &model, mid, db, c) {
            let qids = store
                .query_batch(&reqs)
                .map_err(|e| format!("reference batch failed for client {c}: {e}"))?;
            batches.push(
                qids.iter()
                    .map(|&qid| snap(&store.results(qid).expect("published result")))
                    .collect::<Vec<Snap>>(),
            );
        }
        all.push(batches);
    }
    Ok(all)
}

/// Concurrent run: the same requests, but N real client threads over
/// the served channel transport, merged at the server's discretion.
fn concurrent_run(scn: &Scenario, workers: usize) -> Result<Vec<Vec<Vec<Snap>>>, String> {
    let (store, model, mid, db) = fresh_store(scn, workers);
    let (transport, connector) = channel_transport();
    let handle = serve(
        transport,
        store,
        ServeConfig {
            // Slow the engine slightly and (sometimes) hold a batch
            // window so co-pending requests really do get merged.
            engine_delay: Some(Duration::from_millis(1)),
            batch_window: scn.batch_window.then(|| Duration::from_millis(2)),
            ..ServeConfig::default()
        },
    );
    let outcome: Result<Vec<Vec<Vec<Snap>>>, String> = std::thread::scope(|scope| {
        let mut joins = Vec::with_capacity(scn.clients);
        for c in 0..scn.clients {
            let conn = connector.connect().map_err(|e| format!("connect: {e}"))?;
            let batches = client_requests(scn, &model, mid, db, c);
            joins.push(scope.spawn(move || -> Result<Vec<Vec<Snap>>, String> {
                let mut host = HostClient::over(conn);
                host.hello(&format!("client-{c}"))
                    .map_err(|e| format!("client {c}: hello failed: {e}"))?;
                let mut out = Vec::with_capacity(batches.len());
                for (b, reqs) in batches.iter().enumerate() {
                    // Single-request batches go through the scalar
                    // `query` opcode so both wire paths are exercised.
                    let qids = if reqs.len() == 1 {
                        let r = &reqs[0];
                        vec![host
                            .query(&r.qfv, r.k, r.model, r.db, r.level, r.exact)
                            .map_err(|e| format!("client {c} batch {b}: query failed: {e}"))?]
                    } else {
                        host.query_batch(reqs)
                            .map_err(|e| format!("client {c} batch {b}: batch failed: {e}"))?
                    };
                    let mut snaps = Vec::with_capacity(qids.len());
                    for qid in qids {
                        let r = host
                            .get_results(qid)
                            .map_err(|e| format!("client {c} batch {b}: results failed: {e}"))?;
                        snaps.push(snap(&r));
                    }
                    out.push(snaps);
                }
                Ok(out)
            }));
        }
        joins
            .into_iter()
            .map(|j| j.join().expect("client thread panicked"))
            .collect()
    });
    let (_store, stats) = handle.shutdown();
    let result = outcome?;
    if stats.queries_admitted != (scn.clients * scn.batches_per_client * scn.reqs_per_batch) as u64
    {
        return Err(format!(
            "server admitted {} queries, expected {}",
            stats.queries_admitted,
            scn.clients * scn.batches_per_client * scn.reqs_per_batch
        ));
    }
    Ok(result)
}

fn equivalence_case(scn: &Scenario) -> Result<(), String> {
    let reference = sequential_reference(scn)?;
    for workers in WORKER_COUNTS {
        let concurrent = concurrent_run(scn, workers)?;
        for c in 0..scn.clients {
            for b in 0..scn.batches_per_client {
                check!(
                    concurrent[c][b] == reference[c][b],
                    "workers {workers}: client {c} batch {b} differs from the \
                     sequential reference\n  sequential: {:?}\n  concurrent: {:?}",
                    reference[c][b],
                    concurrent[c][b]
                );
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// N concurrent clients over the channel transport answer
    /// bit-identically to sequential `query_batch`, at parallelism
    /// 1/2/4/auto, with and without armed fault plans.
    #[test]
    fn concurrent_clients_match_sequential_batches(
        (app_idx, model_seed, n, k, level_idx) in
            (0usize..3, 0u64..1_000_000, 16u64..48, 1usize..6, 0usize..2),
        (clients, batches_per_client, reqs_per_batch, window) in
            (2usize..5, 1usize..3, 1usize..4, any::<bool>()),
        (perm_pct, transient_on, tr_pct, t_seed, outage_sel, p_seed) in
            (0u32..=10, any::<bool>(), 0u32..=50, 0u64..1_000_000, 0u32..3, 0u64..1_000_000),
    ) {
        let mut scn = Scenario {
            app: APPS[app_idx],
            model_seed,
            n,
            k,
            level: LEVELS[level_idx],
            clients,
            batches_per_client,
            reqs_per_batch,
            batch_window: window,
            plan: FaultPlan::none(),
        };
        let geometry = DeepStoreConfig::small().ssd.geometry;
        let mut plan = FaultPlan::random(&geometry, f64::from(perm_pct) / 100.0, p_seed);
        if transient_on {
            // max_fail <= 3 stays within the default retry ladder, so
            // transient faults recover identically however requests
            // are grouped into flash passes.
            plan = plan
                .transient(f64::from(tr_pct) / 100.0, t_seed)
                .transient_max_failures(1 + (t_seed % 3) as u32);
        }
        plan = match outage_sel {
            1 => plan.dead_channel((p_seed % geometry.channels as u64) as usize),
            2 => plan.dead_chip(
                (p_seed % geometry.channels as u64) as usize,
                ((p_seed >> 8) % geometry.chips_per_channel as u64) as usize,
            ),
            _ => plan,
        };
        scn.plan = plan;

        let desc = format!("{scn:#?}");
        run_recorded("concurrent_clients_match_sequential_batches", &desc, || {
            equivalence_case(&scn)
        });
    }
}

/// Fault-free pinned case (fast, non-property): two clients, merged
/// windows, every parallelism — a smoke version of the property that
/// always runs even if the proptest case budget shrinks.
#[test]
fn two_client_equivalence_fault_free() {
    let scn = Scenario {
        app: "textqa",
        model_seed: 9,
        n: 32,
        k: 4,
        level: AcceleratorLevel::Ssd,
        clients: 2,
        batches_per_client: 2,
        reqs_per_batch: 3,
        batch_window: true,
        plan: FaultPlan::none(),
    };
    let desc = format!("{scn:#?}");
    run_recorded("two_client_equivalence_fault_free", &desc, || {
        equivalence_case(&scn)
    });
}
