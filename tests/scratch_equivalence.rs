//! Bit-identity harness for the allocation-free inference path.
//!
//! `Model::similarity_scratch` and the page-sequential scan built on it
//! are rewrites of the hot path, not of the semantics: they must return
//! results bit-identical to the allocating reference path
//! (`Model::similarity` over `Engine::read_feature`). Both paths share
//! the kernels in `deepstore-nn`, so equality is structural — these
//! property tests drive that claim over random model architectures
//! (merge ops, layer widths, activations, conv stacks), random zoo
//! models, and faulted scans at every parallelism setting.

use deepstore_core::config::DeepStoreConfig;
use deepstore_core::engine::{DbId, Engine};
use deepstore_core::DeepStoreError;
use deepstore_flash::fault::FaultPlan;
use deepstore_flash::FlashError;
use deepstore_nn::{
    zoo, Activation, ElementWiseOp, InferenceScratch, MergeOp, Model, ModelBuilder, Tensor,
};
use deepstore_systolic::topk::TopKSorter;
use proptest::prelude::*;

const ACTIVATIONS: [Activation; 4] = [
    Activation::Identity,
    Activation::Relu,
    Activation::Sigmoid,
    Activation::Tanh,
];

const MERGES: [MergeOp; 4] = [
    MergeOp::Concat,
    MergeOp::ElementWise(ElementWiseOp::Add),
    MergeOp::ElementWise(ElementWiseOp::Sub),
    MergeOp::ElementWise(ElementWiseOp::Mul),
];

/// Builds a random dense model: merge op, 1–3 hidden layers of varied
/// width/activation, and a head of width 1–5 (exercising the `first
/// element` and `mean` reductions).
fn dense_model(
    feature_len: usize,
    merge_idx: usize,
    widths: &[usize],
    act_idx: usize,
    head: usize,
    seed: u64,
) -> Model {
    let merge = MERGES[merge_idx % MERGES.len()];
    let mut b = ModelBuilder::new("prop", feature_len).merge(merge);
    let mut inp = match merge {
        MergeOp::Concat => feature_len * 2,
        MergeOp::ElementWise(_) => feature_len,
    };
    for (i, &w) in widths.iter().enumerate() {
        b = b.dense(inp, w, ACTIVATIONS[(act_idx + i) % ACTIVATIONS.len()]);
        inp = w;
    }
    b = b.dense(inp, head, Activation::Sigmoid);
    b.build().seeded(seed)
}

/// A small two-branch conv model: elementwise merge into a `[2, 4, 4]`
/// grid, a strided conv, then a dense head.
fn conv_model(merge_idx: usize, op_seed: u64, head: usize) -> Model {
    let ew = [ElementWiseOp::Add, ElementWiseOp::Sub, ElementWiseOp::Mul];
    ModelBuilder::new("prop-conv", 32)
        .merge(MergeOp::ElementWise(ew[merge_idx % ew.len()]))
        .conv2d(2, 3, 4, 4, 3, (2, 1), 1, Activation::Relu)
        .dense(3 * 2 * 4, head, Activation::Sigmoid)
        .build()
        .seeded(op_seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random dense architectures: the scratch path equals the
    /// allocating path bit for bit, with the scratch reused across
    /// comparisons (state from one inference must not leak into the
    /// next).
    #[test]
    fn scratch_matches_reference_on_random_dense_models(
        (feature_len, merge_idx, w0, w1, act_idx, head, seed) in (
            1usize..33,
            0usize..4,
            1usize..48,
            1usize..24,
            0usize..4,
            1usize..6,
            0u64..1_000_000,
        )
    ) {
        let model = dense_model(feature_len, merge_idx, &[w0, w1], act_idx, head, seed);
        let mut scratch = InferenceScratch::for_model(&model);
        let q = model.random_feature(seed ^ 0xABCD);
        for i in 0..4u64 {
            let d = model.random_feature(seed.wrapping_add(i));
            let fast = model.similarity_scratch(&q, d.data(), &mut scratch).unwrap();
            let reference = model.similarity(&q, &d).unwrap();
            prop_assert_eq!(fast.to_bits(), reference.to_bits());
        }
    }

    /// Conv stacks run through the same shared kernels: bit-identical
    /// too, including the no-reshape flat-slice conv arm.
    #[test]
    fn scratch_matches_reference_on_conv_models(
        (merge_idx, seed, head) in (0usize..3, 0u64..1_000_000, 1usize..4)
    ) {
        let model = conv_model(merge_idx, seed, head);
        let mut scratch = InferenceScratch::for_model(&model);
        let q = model.random_feature(seed ^ 0x1234);
        for i in 0..3u64 {
            let d = model.random_feature(seed.wrapping_add(100 + i));
            let fast = model.similarity_scratch(&q, d.data(), &mut scratch).unwrap();
            let reference = model.similarity(&q, &d).unwrap();
            prop_assert_eq!(fast.to_bits(), reference.to_bits());
        }
    }

    /// Random zoo models (the paper's actual workloads, conv included)
    /// with random feature counts, through the full engine: every scan
    /// score equals the reference read-then-score path bit for bit.
    #[test]
    fn scan_scores_match_reference_path_on_zoo_models(
        (app_idx, model_seed, n, q_seed) in (
            0usize..4,
            0u64..1_000_000,
            1u64..24,
            0u64..1_000_000,
        )
    ) {
        let app = ["textqa", "tir", "mir", "reid"][app_idx];
        let model = zoo::by_name(app).unwrap().seeded(model_seed);
        let mut engine = Engine::new(DeepStoreConfig::small());
        let features: Vec<Tensor> = (0..n).map(|i| model.random_feature(i)).collect();
        let db = engine.write_db(&features).unwrap();
        engine.seal_db(db).unwrap();
        let probe = model.random_feature(q_seed ^ 0x5EED);

        let top = engine.scan_top_k(db, &model, &probe, n as usize).unwrap();
        prop_assert_eq!(top.len(), n as usize);
        for hit in &top {
            let f = engine.read_feature(db, hit.feature_id).unwrap();
            let reference = model.similarity(&probe, &f).unwrap();
            prop_assert_eq!(hit.score.to_bits(), reference.to_bits());
        }
    }

    /// Faulted reads: the page-sequential scan skips exactly the features
    /// whose reads fail and ranks the survivors bit-identically to a
    /// reference built from per-feature reads — at every parallelism
    /// setting.
    #[test]
    fn faulted_scan_matches_reference_at_every_parallelism(
        (model_seed, n, k, fault_seed) in (
            0u64..1_000_000,
            8u64..48,
            1usize..10,
            0u64..1_000_000,
        )
    ) {
        let build = |workers: usize| -> (Engine, Model, DbId) {
            let model = zoo::textqa().seeded(model_seed);
            let mut engine =
                Engine::new(DeepStoreConfig::small().with_parallelism(workers));
            let features: Vec<Tensor> = (0..n).map(|i| model.random_feature(i)).collect();
            let db = engine.write_db(&features).unwrap();
            engine.seal_db(db).unwrap();
            let geometry = engine.config().ssd.geometry;
            engine.inject_faults(FaultPlan::random(&geometry, 0.15, fault_seed));
            (engine, model, db)
        };

        // Reference: per-feature reads through the allocating path, with
        // the same skip-on-ECC policy, ranked by the same sorter.
        let (engine, model, db) = build(1);
        let probe = model.random_feature(model_seed ^ 0xFA017);
        let mut sorter = TopKSorter::new(k);
        let mut skipped = 0u64;
        for idx in 0..n {
            match engine.read_feature(db, idx) {
                Ok(f) => {
                    sorter.offer(model.similarity(&probe, &f).unwrap(), idx);
                }
                Err(DeepStoreError::Flash(FlashError::UncorrectableEcc(_))) => skipped += 1,
                Err(e) => panic!("unexpected read error: {e}"),
            }
        }
        let expected = sorter.ranked();

        for workers in [1usize, 2, 4, 8, 0] {
            let (engine, model, db) = build(workers);
            let top = engine.scan_top_k(db, &model, &probe, k).unwrap();
            prop_assert_eq!(&expected, &top);
            prop_assert_eq!(engine.unreadable_skipped(), skipped);
        }
    }
}
