//! Property-based tests on core data structures and invariants.

use deepstore::flash::layout::{DbLayout, Placement};
use deepstore::flash::stream::{stripe_pages, ChannelStream};
use deepstore::flash::{SimDuration, SsdConfig};
use deepstore::nn::Tensor;
use deepstore::systolic::topk::TopKSorter;
use proptest::prelude::*;

proptest! {
    /// The hardware-style top-K sorter agrees with a naive sort for any
    /// score stream.
    #[test]
    fn topk_matches_naive_sort(
        scores in proptest::collection::vec(0.0f32..1.0, 1..200),
        k in 1usize..20,
    ) {
        let mut sorter = TopKSorter::new(k);
        for (i, &s) in scores.iter().enumerate() {
            sorter.offer(s, i as u64);
        }
        let mut naive: Vec<(f32, u64)> = scores
            .iter()
            .enumerate()
            .map(|(i, &s)| (s, i as u64))
            .collect();
        // Stable by insertion order on ties, descending by score.
        naive.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap().then(a.1.cmp(&b.1)));
        naive.truncate(k);
        let got: Vec<(f32, u64)> = sorter.ranked().iter().map(|e| (e.score, e.feature_id)).collect();
        prop_assert_eq!(got, naive);
    }

    /// Merging per-shard top-K sorters yields the global top-K.
    #[test]
    fn topk_merge_equals_global(
        scores in proptest::collection::vec(0.0f32..1.0, 1..150),
        k in 1usize..10,
        shards in 1usize..5,
    ) {
        let mut parts: Vec<TopKSorter> = (0..shards).map(|_| TopKSorter::new(k)).collect();
        let mut global = TopKSorter::new(k);
        for (i, &s) in scores.iter().enumerate() {
            parts[i % shards].offer(s, i as u64);
            global.offer(s, i as u64);
        }
        let mut merged = TopKSorter::new(k);
        for p in &parts {
            merged.merge(p);
        }
        let scores_of = |s: &TopKSorter| s.ranked().iter().map(|e| e.score).collect::<Vec<_>>();
        prop_assert_eq!(scores_of(&merged), scores_of(&global));
    }

    /// Striping conserves pages and balances within one page.
    #[test]
    fn striping_conserves_and_balances(total in 0u64..1_000_000, channels in 1usize..128) {
        let per = stripe_pages(total, channels);
        prop_assert_eq!(per.len(), channels);
        prop_assert_eq!(per.iter().sum::<u64>(), total);
        let max = per.iter().max().copied().unwrap_or(0);
        let min = per.iter().min().copied().unwrap_or(0);
        prop_assert!(max - min <= 1);
    }

    /// The event-driven stream is monotone in page count and never beats
    /// the bus bandwidth.
    #[test]
    fn stream_time_is_monotone_and_bus_bounded(pages in 1u64..5_000) {
        let cfg = SsdConfig::paper_default();
        let s = ChannelStream::new(&cfg);
        let t = s.stream_pages(pages);
        let t_more = s.stream_pages(pages + 1);
        prop_assert!(t_more >= t);
        // Cannot move data faster than the channel bus.
        let bus_floor = SimDuration::for_transfer(
            pages * cfg.geometry.page_bytes as u64,
            cfg.timing.channel_bus_bytes_per_sec,
        );
        prop_assert!(t >= bus_floor);
    }

    /// Layout accounting: packed never uses more pages than page-aligned,
    /// and both cover the payload.
    #[test]
    fn layout_page_accounting(
        feature_bytes in 64usize..100_000,
        features in 0u64..10_000,
    ) {
        let page = 16 * 1024;
        let packed = DbLayout::new(feature_bytes, features, page, Placement::Packed);
        let aligned = DbLayout::new(feature_bytes, features, page, Placement::PageAligned);
        prop_assert!(packed.total_pages() <= aligned.total_pages());
        prop_assert!(packed.footprint_bytes() >= packed.payload_bytes());
        prop_assert!(aligned.read_amplification() >= 1.0 - 1e-9);
    }

    /// Tensor element-wise algebra: add/sub roundtrip and dot symmetry.
    #[test]
    fn tensor_algebra(
        a in proptest::collection::vec(-10.0f32..10.0, 1..64),
        b_seed in 0u64..1000,
    ) {
        let ta = Tensor::from_slice(&a);
        let tb = Tensor::random(vec![a.len()], 1.0, b_seed);
        let sum = ta.add(&tb).unwrap();
        let back = sum.sub(&tb).unwrap();
        for (x, y) in back.data().iter().zip(ta.data()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
        let d1 = ta.dot(&tb).unwrap();
        let d2 = tb.dot(&ta).unwrap();
        prop_assert!((d1 - d2).abs() < 1e-3);
    }

    /// SimDuration arithmetic is consistent with nanosecond math.
    #[test]
    fn duration_arithmetic(a in 0u64..u64::MAX / 4, b in 0u64..u64::MAX / 4) {
        let da = SimDuration::from_nanos(a);
        let db = SimDuration::from_nanos(b);
        prop_assert_eq!((da + db).as_nanos(), a + b);
        prop_assert_eq!((da - db).as_nanos(), a.saturating_sub(b));
        prop_assert_eq!(da.max(db).as_nanos(), a.max(b));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Flash roundtrip: any set of feature vectors written through the
    /// engine reads back bit-identical (packed placement, multi-page
    /// features included).
    #[test]
    fn engine_roundtrips_any_features(
        dim in 1usize..2000,
        n in 1u64..12,
        seed in 0u64..100,
    ) {
        use deepstore::core::engine::Engine;
        use deepstore::core::DeepStoreConfig;
        let mut e = Engine::new(DeepStoreConfig::small());
        let features: Vec<Tensor> =
            (0..n).map(|i| Tensor::random(vec![dim], 1.0, seed + i)).collect();
        let db = e.write_db(&features).unwrap();
        e.seal_db(db).unwrap();
        for (i, f) in features.iter().enumerate() {
            prop_assert_eq!(&e.read_feature(db, i as u64).unwrap(), f);
        }
    }

    /// The query cache never exceeds capacity and hit results are always
    /// copies of inserted results.
    #[test]
    fn cache_capacity_invariant(
        capacity in 1usize..16,
        ops in proptest::collection::vec(0u64..8, 1..60),
    ) {
        use deepstore::core::{QueryCache, QueryCacheConfig};
        let mut qc = QueryCache::new(QueryCacheConfig {
            capacity,
            threshold: 0.05,
            qcn_accuracy: 1.0,
        });
        for &q in &ops {
            let qfv = Tensor::random(vec![16], 1.0, q);
            if qc.lookup(&qfv).is_none() {
                qc.insert(qfv, vec![]);
            }
            prop_assert!(qc.len() <= capacity);
        }
        let stats = qc.stats();
        prop_assert_eq!(stats.lookups, ops.len() as u64);
        prop_assert!(stats.hits <= stats.lookups);
    }
}
