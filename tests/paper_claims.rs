//! Integration tests pinning the paper's headline claims.
//!
//! Each test cites the claim it reproduces; the quantitative bands are
//! deliberately generous (the substrate is a reimplemented simulator, not
//! the authors' testbed) but the *shape* — who wins, by roughly what
//! factor, where the crossovers fall — must hold.

use deepstore::baseline::{GpuSsdSystem, WimpyCores};
use deepstore::core::accel::scan;
use deepstore::core::AcceleratorLevel;
use deepstore::core::DeepStoreConfig;
use deepstore::nn::zoo;
use deepstore::workloads::{App, APP_NAMES};

/// §3 / Figure 2: storage I/O is 56–90% of query execution time.
#[test]
fn claim_storage_io_dominates() {
    for name in APP_NAMES {
        let app = App::new(name);
        let sys = GpuSsdSystem::paper_default(name);
        let b = sys.query_batched(&app.scan_spec(), app.eval_batch);
        let (io, _, _) = b.percentages();
        assert!((56.0..=90.0).contains(&io), "{name}: io = {io:.1}%");
    }
}

/// Abstract: "DeepStore improves the query performance by up to 17.7x".
#[test]
fn claim_peak_speedup_up_to_17x() {
    let mut best = 0.0f64;
    for name in APP_NAMES {
        let app = App::new(name);
        let cfg = DeepStoreConfig::paper_default();
        let gpu = GpuSsdSystem::paper_default(name)
            .query(&app.scan_spec())
            .total_secs;
        let t = scan(AcceleratorLevel::Channel, &app.scan_workload(&cfg), &cfg)
            .unwrap()
            .elapsed
            .as_secs_f64();
        best = best.max(gpu / t);
    }
    assert!(
        (14.0..=22.0).contains(&best),
        "peak channel speedup = {best:.1}"
    );
}

/// §6.2: "channel-level accelerators perform 3.9–17.7x better than the
/// GPU+SSD baseline".
#[test]
fn claim_channel_speedup_band() {
    for name in APP_NAMES {
        let app = App::new(name);
        let cfg = DeepStoreConfig::paper_default();
        let gpu = GpuSsdSystem::paper_default(name)
            .query(&app.scan_spec())
            .total_secs;
        let t = scan(AcceleratorLevel::Channel, &app.scan_workload(&cfg), &cfg)
            .unwrap()
            .elapsed
            .as_secs_f64();
        let speedup = gpu / t;
        assert!(
            (3.0..=22.0).contains(&speedup),
            "{name}: channel speedup = {speedup:.2}"
        );
    }
}

/// §6.2: the wimpy embedded cores are 4.5–22.8x slower than GPU+SSD.
#[test]
fn claim_wimpy_cores_are_slower() {
    for name in APP_NAMES {
        let app = App::new(name);
        let gpu = GpuSsdSystem::paper_default(name)
            .query(&app.scan_spec())
            .total_secs;
        let wimpy = WimpyCores::arm_a57_octa()
            .query_time(&app.scan_spec())
            .as_secs_f64();
        let slowdown = wimpy / gpu;
        assert!((4.0..=110.0).contains(&slowdown), "{name}: {slowdown:.1}");
    }
}

/// §6.2 conclusion: "DeepStore's channel-level accelerator design
/// achieves the best performance" — at every level ordering: channel >
/// chip > ssd, and SSD level is slower than the GPU.
#[test]
fn claim_level_ordering() {
    let cfg = DeepStoreConfig::paper_default();
    for name in APP_NAMES {
        let app = App::new(name);
        let w = app.scan_workload(&cfg);
        let gpu = GpuSsdSystem::paper_default(name)
            .query(&app.scan_spec())
            .total_secs;
        let t = |level| scan(level, &w, &cfg).map(|s| s.elapsed.as_secs_f64());
        let ssd = t(AcceleratorLevel::Ssd).unwrap();
        let ch = t(AcceleratorLevel::Channel).unwrap();
        assert!(ch < ssd, "{name}");
        assert!(ssd > gpu, "{name}: SSD level should lose to the GPU");
        if let Some(chip) = t(AcceleratorLevel::Chip) {
            assert!(ch < chip && chip < ssd, "{name}");
        }
    }
}

/// §6.3 / Figure 9: quadrupling the flash read latency to 212us costs the
/// channel level only ~10% and the chip level ~4%.
#[test]
fn claim_latency_insensitivity() {
    let cfg = DeepStoreConfig::paper_default();
    let mut slow = DeepStoreConfig::paper_default();
    slow.ssd.timing = slow.ssd.timing.with_read_latency_ratio(4, 1);
    for name in APP_NAMES {
        let app = App::new(name);
        for level in [AcceleratorLevel::Channel, AcceleratorLevel::Chip] {
            let (Some(base), Some(degraded)) = (
                scan(level, &app.scan_workload(&cfg), &cfg),
                scan(level, &app.scan_workload(&slow), &slow),
            ) else {
                continue;
            };
            let loss = degraded.elapsed.as_secs_f64() / base.elapsed.as_secs_f64() - 1.0;
            assert!(loss < 0.15, "{name}/{level}: {:.1}% loss", loss * 100.0);
        }
    }
}

/// §6.3 / Figure 10a: channel- and chip-level performance scales linearly
/// with the channel count; the traditional system saturates beyond 8.
#[test]
fn claim_internal_bandwidth_scaling() {
    let app = App::new("mir");
    let time_at = |channels: usize, level: AcceleratorLevel| {
        let mut cfg = DeepStoreConfig::paper_default();
        cfg.ssd.geometry.channels = channels;
        scan(level, &app.scan_workload(&cfg), &cfg)
            .unwrap()
            .elapsed
            .as_secs_f64()
    };
    for level in [AcceleratorLevel::Channel, AcceleratorLevel::Chip] {
        let t8 = time_at(8, level);
        let t64 = time_at(64, level);
        let scaling = t8 / t64;
        assert!((6.0..=9.0).contains(&scaling), "{level}: {scaling:.2}");
    }
    // Traditional saturates.
    let trad_at = |channels: usize| {
        let mut c = deepstore::flash::SsdConfig::paper_default();
        c.geometry.channels = channels;
        GpuSsdSystem::paper_default("mir")
            .with_ssd_config(c)
            .query(&app.scan_spec())
            .total_secs
    };
    assert!((trad_at(8) / trad_at(64) - 1.0).abs() < 0.05);
}

/// §6.2 note 1: ReId cannot run on the chip-level accelerator; everything
/// else can.
#[test]
fn claim_chip_level_reid_gap() {
    let cfg = DeepStoreConfig::paper_default();
    for name in APP_NAMES {
        let app = App::new(name);
        let supported = scan(AcceleratorLevel::Chip, &app.scan_workload(&cfg), &cfg).is_some();
        assert_eq!(supported, name != "reid", "{name}");
    }
}

/// §4.5 / Figure 6: FC layers saturate at 512 PEs, convolutions at 1024.
#[test]
fn claim_figure6_saturation() {
    use deepstore::systolic::dse::{largest_conv, largest_fc, pe_sweep};
    let models = zoo::all();
    let budgets = [128usize, 256, 512, 1024, 2048];
    let fc = pe_sweep(&largest_fc(&models).unwrap(), &budgets, 800e6);
    assert_eq!(fc[2].1, fc[4].1, "FC gains beyond 512 PEs");
    assert!(fc[2].1 > fc[1].1);
    let conv = pe_sweep(&largest_conv(&models).unwrap(), &budgets, 800e6);
    assert_eq!(conv[3].1, conv[4].1, "conv gains beyond 1024 PEs");
    assert!(conv[3].1 > conv[2].1);
}

/// Abstract: energy efficiency improves "by up to 78.6x". Our model lands
/// the peak in the tens, at the channel level, on TextQA.
#[test]
fn claim_peak_energy_efficiency() {
    use deepstore_bench::evaluate_app;
    let mut best = ("", 0.0f64);
    for name in APP_NAMES {
        let e = evaluate_app(&App::new(name));
        if let Some(l) = e.level(AcceleratorLevel::Channel) {
            if l.energy_eff > best.1 {
                best = (name, l.energy_eff);
            }
        }
    }
    assert_eq!(best.0, "textqa");
    assert!((40.0..=150.0).contains(&best.1), "peak eff = {:.1}", best.1);
}
