//! Deterministic chaos harness for the layered fault model and the
//! retry/remap/degrade pipeline.
//!
//! Each property draws a random scenario — SSD geometry (channels ×
//! chips × pages-per-block), zoo model, database size, query batch, and
//! a layered [`FaultPlan`] (permanent page faults, transient ECC
//! faults, whole-channel/chip outages, wear-out) — and pins the
//! fault-tolerance contract across parallelism 1/2/4/auto:
//!
//! * no panic: every batch either answers or returns
//!   [`DeepStoreError::InsufficientCoverage`] (only when a
//!   `min_coverage` policy demands it);
//! * accounting is exact: `coverage == (n - skipped) / n`,
//!   `degraded == (coverage < 1.0)`, and the top-K length is
//!   `min(k, survivors)`;
//! * degraded answers are honest: the degraded top-K equals the top-K
//!   of the fault-free scores restricted to the surviving features — a
//!   subset of the fault-free ranking, never an invented hit;
//! * transient faults plus the default retry ladder are invisible:
//!   results are bit-identical to the fault-free run;
//! * results are bit-identical at every parallelism setting.
//!
//! The proptest shim derives every case deterministically from the
//! property name and case index, so a red run reproduces exactly. There
//! is no shrinking; instead, the full failing scenario (the nearest
//! thing to a minimized seed) is appended to
//! `target/chaos-seeds/<property>.txt`, which CI uploads as an artifact
//! on failure.

use std::collections::HashSet;
use std::fmt::Write as _;

use deepstore::core::{
    AcceleratorLevel, DeepStore, DeepStoreConfig, DeepStoreError, ModelId, QueryRequest,
};
use deepstore::flash::fault::FaultPlan;
use deepstore::nn::{zoo, Model, ModelGraph, Tensor};
use deepstore_core::engine::DbId;
use proptest::prelude::*;

/// Parallelism settings exercised per scenario. `0` means "one worker
/// per host core" (auto).
const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 0];

const APPS: [&str; 3] = ["textqa", "tir", "mir"];

const LEVELS: [AcceleratorLevel; 2] = [AcceleratorLevel::Ssd, AcceleratorLevel::Channel];

/// Ranked hits reduced to comparable bits: `(feature_index, score bits)`.
type Ranked = Vec<(u64, u32)>;

/// One query's observable outcome, reduced to exactly comparable bits.
#[derive(Debug, Clone, PartialEq)]
struct Snap {
    ranked: Ranked,
    skipped: u64,
    coverage_bits: u64,
    degraded: bool,
}

impl Snap {
    fn coverage(&self) -> f64 {
        f64::from_bits(self.coverage_bits)
    }
}

/// A fully-derived chaos case: everything needed to replay it by hand.
#[derive(Debug)]
struct Scenario {
    app: &'static str,
    model_seed: u64,
    n: u64,
    k: usize,
    batch: usize,
    level: AcceleratorLevel,
    channels: usize,
    chips_per_channel: usize,
    pages_per_block: usize,
    plan: FaultPlan,
    /// `min_coverage` policy exercised by the last phase of the case.
    required: f64,
}

/// Early-return check used by case runners so that a violated invariant
/// reports the whole scenario instead of panicking mid-case.
macro_rules! check {
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return Err(format!($($fmt)*));
        }
    };
}

fn chaos_seed_dir() -> std::path::PathBuf {
    let target = std::env::var("CARGO_TARGET_DIR").unwrap_or_else(|_| "target".into());
    std::path::PathBuf::from(target).join("chaos-seeds")
}

/// Appends the failing scenario to `target/chaos-seeds/<property>.txt`
/// so CI can upload it as an artifact. The shim has no shrinking, so
/// the recorded scenario (already small by construction) is the
/// reproduction recipe.
fn record_failing_case(property: &str, case: &str, msg: &str) {
    use std::io::Write;
    let dir = chaos_seed_dir();
    std::fs::create_dir_all(&dir).ok();
    let path = dir.join(format!("{property}.txt"));
    if let Ok(mut f) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
    {
        let _ = writeln!(f, "== failing case ==\n{case}\n-- violation --\n{msg}\n");
    }
}

/// Runs `case`, recording the scenario to the seed directory on either
/// an invariant violation or a panic, then failing the test.
fn run_recorded(property: &str, case_desc: &str, case: impl FnOnce() -> Result<(), String>) {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(case)) {
        Ok(Ok(())) => {}
        Ok(Err(msg)) => {
            record_failing_case(property, case_desc, &msg);
            panic!("{property}: {msg}\n(scenario recorded under target/chaos-seeds/)");
        }
        Err(payload) => {
            let msg = payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
                .unwrap_or_else(|| "non-string panic payload".into());
            record_failing_case(property, case_desc, &format!("panic: {msg}"));
            std::panic::resume_unwind(payload);
        }
    }
}

fn store_config(scn: &Scenario, workers: usize) -> DeepStoreConfig {
    let mut cfg = DeepStoreConfig::small().with_parallelism(workers);
    cfg.ssd.geometry.channels = scn.channels;
    cfg.ssd.geometry.chips_per_channel = scn.chips_per_channel;
    cfg.ssd.geometry.pages_per_block = scn.pages_per_block;
    cfg
}

/// Builds a store with the scenario's geometry, writes the database,
/// loads the model, and (when `faulted`) arms the scenario's plan.
fn fresh_store(scn: &Scenario, workers: usize, faulted: bool) -> (DeepStore, Model, ModelId, DbId) {
    let model = zoo::by_name(scn.app)
        .expect("known app")
        .seeded_metric(scn.model_seed);
    let mut store = DeepStore::in_memory(store_config(scn, workers));
    store.disable_qc();
    let features: Vec<Tensor> = (0..scn.n).map(|i| model.random_feature(i)).collect();
    let db = store.write_db(&features).expect("write db");
    let mid = store
        .load_model(&ModelGraph::from_model(&model))
        .expect("load model");
    if faulted {
        store.inject_faults(scn.plan.clone());
    }
    (store, model, mid, db)
}

fn build_requests(
    scn: &Scenario,
    model: &Model,
    mid: ModelId,
    db: DbId,
    k: usize,
    min_coverage: Option<f64>,
) -> Vec<QueryRequest> {
    (0..scn.batch as u64)
        .map(|i| {
            let mut req = QueryRequest::new(model.random_feature(10_000 + i), mid, db)
                .k(k)
                .level(scn.level);
            if let Some(f) = min_coverage {
                req = req.min_coverage(f);
            }
            req
        })
        .collect()
}

/// One full batch through a fresh store; returns per-query snapshots.
fn run_batch(
    scn: &Scenario,
    workers: usize,
    k: usize,
    faulted: bool,
    min_coverage: Option<f64>,
) -> Result<Vec<Snap>, DeepStoreError> {
    let (mut store, model, mid, db) = fresh_store(scn, workers, faulted);
    let requests = build_requests(scn, &model, mid, db, k, min_coverage);
    let qids = store.query_batch(&requests)?;
    Ok(qids
        .into_iter()
        .map(|qid| {
            let r = store.results(qid).expect("published result");
            Snap {
                ranked: r
                    .top_k
                    .iter()
                    .map(|h| (h.feature_index, h.score.to_bits()))
                    .collect(),
                skipped: r.skipped,
                coverage_bits: r.coverage.to_bits(),
                degraded: r.degraded,
            }
        })
        .collect())
}

/// Accounting invariants every answered query must satisfy, fault plan
/// or not.
fn verify_accounting(scn: &Scenario, snaps: &[Snap]) -> Result<(), String> {
    check!(
        snaps.len() == scn.batch,
        "batch of {} produced {} results",
        scn.batch,
        snaps.len()
    );
    for (i, s) in snaps.iter().enumerate() {
        let cov = s.coverage();
        check!(
            s.skipped <= scn.n,
            "query {i}: skipped {} exceeds db size {}",
            s.skipped,
            scn.n
        );
        let expect_cov = (scn.n - s.skipped) as f64 / scn.n as f64;
        check!(
            s.coverage_bits == expect_cov.to_bits(),
            "query {i}: coverage {cov} != (n - skipped)/n = {expect_cov} (skipped {})",
            s.skipped
        );
        check!(
            s.degraded == (cov < 1.0),
            "query {i}: degraded flag {} disagrees with coverage {cov}",
            s.degraded
        );
        let survivors = (scn.n - s.skipped) as usize;
        check!(
            s.ranked.len() == scn.k.min(survivors),
            "query {i}: top-K length {} != min(k={}, survivors={survivors})",
            s.ranked.len(),
            scn.k
        );
        let sorted = s
            .ranked
            .windows(2)
            .all(|w| f32::from_bits(w[0].1) >= f32::from_bits(w[1].1));
        check!(sorted, "query {i}: top-K scores are not non-increasing");
    }
    Ok(())
}

/// The full chaos case: accounting + cross-parallelism determinism +
/// honest-degradation subset checks + `min_coverage` policy.
fn chaos_case(scn: &Scenario) -> Result<(), String> {
    // Phase 1: the faulted batch answers identically at every
    // parallelism and keeps its books straight.
    let mut baseline: Option<Vec<Snap>> = None;
    for workers in WORKER_COUNTS {
        let snaps = run_batch(scn, workers, scn.k, true, None)
            .map_err(|e| format!("workers {workers}: batch failed: {e}"))?;
        verify_accounting(scn, &snaps)?;
        match &baseline {
            None => baseline = Some(snaps),
            Some(base) => check!(
                base == &snaps,
                "workers {workers}: results differ from the serial run"
            ),
        }
    }
    let degraded = baseline.expect("at least one worker count ran");

    // Phase 2: honest degradation. Rank the *whole* database fault-free
    // and faulted (k = n): the faulted full ranking is the fault-free
    // ranking restricted to surviving features, and the degraded top-K
    // is its prefix.
    let clean_full = run_batch(scn, 1, scn.n as usize, false, None)
        .map_err(|e| format!("fault-free full ranking failed: {e}"))?;
    let faulted_full = run_batch(scn, 1, scn.n as usize, true, None)
        .map_err(|e| format!("faulted full ranking failed: {e}"))?;
    for i in 0..scn.batch {
        let full = &clean_full[i].ranked;
        let survivors = &faulted_full[i].ranked;
        check!(
            full.len() == scn.n as usize,
            "query {i}: fault-free full ranking has {} of {} features",
            full.len(),
            scn.n
        );
        check!(
            survivors.len() as u64 == scn.n - faulted_full[i].skipped,
            "query {i}: {} survivors but {} skipped of {}",
            survivors.len(),
            faulted_full[i].skipped,
            scn.n
        );
        check!(
            faulted_full[i].skipped == degraded[i].skipped,
            "query {i}: skipped differs between k={} and k={} passes",
            scn.n,
            scn.k
        );
        let full_pairs: HashSet<(u64, u32)> = full.iter().copied().collect();
        for &hit in survivors {
            check!(
                full_pairs.contains(&hit),
                "query {i}: degraded hit {hit:?} is absent from the fault-free ranking"
            );
        }
        let survivor_ids: HashSet<u64> = survivors.iter().map(|&(id, _)| id).collect();
        let expected: Ranked = full
            .iter()
            .copied()
            .filter(|(id, _)| survivor_ids.contains(id))
            .collect();
        check!(
            &expected == survivors,
            "query {i}: surviving features are not ranked in fault-free order"
        );
        let k_len = degraded[i].ranked.len();
        check!(
            degraded[i].ranked[..] == expected[..k_len],
            "query {i}: degraded top-K is not the prefix of the surviving ranking"
        );
    }

    // Phase 3: the min_coverage policy refuses exactly when some query
    // in the batch falls below the bar, and is invisible otherwise.
    let starved = degraded.iter().any(|s| s.coverage() < scn.required);
    match run_batch(scn, 1, scn.k, true, Some(scn.required)) {
        Ok(snaps) => {
            check!(
                !starved,
                "min_coverage {} accepted a batch with coverage below it",
                scn.required
            );
            check!(
                snaps == degraded,
                "min_coverage {} changed the answers of an accepted batch",
                scn.required
            );
        }
        Err(DeepStoreError::InsufficientCoverage { required, achieved }) => {
            check!(
                starved,
                "min_coverage {} rejected a batch that meets it",
                scn.required
            );
            check!(
                required.to_bits() == scn.required.to_bits(),
                "error echoes required {required}, policy was {}",
                scn.required
            );
            let under_bar = achieved < required;
            check!(
                under_bar,
                "rejection reports achieved {achieved} >= required {required}"
            );
        }
        Err(e) => check!(false, "min_coverage run failed with unexpected error: {e}"),
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Random geometry × random layered fault plan × random query
    /// batch: accounting exact, degradation honest, answers identical
    /// at parallelism 1/2/4/auto, `min_coverage` enforced.
    #[test]
    fn chaos_scan_invariants(
        (app_idx, model_seed, n, k, batch, level_idx) in
            (0usize..3, 0u64..1_000_000, 16u64..64, 1usize..7, 1usize..5, 0usize..2),
        (channels, chips_per_channel, ppb_sel) in (2usize..=4, 1usize..=2, 0usize..2),
        (perm_pct, transient_on, tr_pct, t_seed, outage_sel, p_seed) in
            (0u32..=15, any::<bool>(), 0u32..=50, 0u64..1_000_000, 0u32..4, 0u64..1_000_000),
        req_pct in 0u32..=100,
    ) {
        let mut scn = Scenario {
            app: APPS[app_idx],
            model_seed,
            n,
            k,
            batch,
            level: LEVELS[level_idx],
            channels,
            chips_per_channel,
            pages_per_block: [8, 16][ppb_sel],
            plan: FaultPlan::none(),
            required: f64::from(req_pct) / 100.0,
        };
        let geometry = store_config(&scn, 1).ssd.geometry;
        let mut plan = FaultPlan::random(&geometry, f64::from(perm_pct) / 100.0, p_seed);
        if transient_on {
            // max_fail <= 3 stays within the default 4-attempt retry
            // ladder, so the transient layer never costs coverage.
            plan = plan
                .transient(f64::from(tr_pct) / 100.0, t_seed)
                .transient_max_failures(1 + (t_seed % 3) as u32);
        }
        plan = match outage_sel {
            1 => plan.dead_channel((p_seed % channels as u64) as usize),
            2 => plan.dead_chip(
                (p_seed % channels as u64) as usize,
                ((p_seed >> 8) % chips_per_channel as u64) as usize,
            ),
            3 => plan.wear_threshold(1 + p_seed % 2),
            _ => plan,
        };
        scn.plan = plan;

        let desc = format!("{scn:#?}");
        run_recorded("chaos_scan_invariants", &desc, || chaos_case(&scn));
    }

    /// Transient-only fault plans, with the default retry ladder, are
    /// bit-invisible: every query matches the fault-free run exactly,
    /// with full coverage, at every parallelism setting.
    #[test]
    fn transient_faults_with_retries_are_invisible(
        (app_idx, model_seed, n, k, batch) in
            (0usize..3, 0u64..1_000_000, 16u64..48, 1usize..6, 1usize..4),
        (rate_pct, t_seed, max_fail) in (1u32..=100, 0u64..1_000_000, 1u32..=3),
    ) {
        let scn = Scenario {
            app: APPS[app_idx],
            model_seed,
            n,
            k,
            batch,
            level: AcceleratorLevel::Ssd,
            channels: 4,
            chips_per_channel: 2,
            pages_per_block: 16,
            plan: FaultPlan::none()
                .transient(f64::from(rate_pct) / 100.0, t_seed)
                .transient_max_failures(max_fail),
            required: 1.0,
        };
        let desc = format!("{scn:#?}");
        run_recorded("transient_faults_with_retries_are_invisible", &desc, || {
            let clean = run_batch(&scn, 1, scn.k, false, None)
                .map_err(|e| format!("fault-free run failed: {e}"))?;
            verify_accounting(&scn, &clean)?;
            for workers in WORKER_COUNTS {
                let faulted = run_batch(&scn, workers, scn.k, true, None)
                    .map_err(|e| format!("workers {workers}: transient run failed: {e}"))?;
                check!(
                    faulted == clean,
                    "workers {workers}: transient faults changed the answer"
                );
                for (i, s) in faulted.iter().enumerate() {
                    check!(
                        s.skipped == 0 && !s.degraded && s.coverage() == 1.0,
                        "workers {workers} query {i}: transient faults cost coverage \
                         (skipped {}, coverage {})",
                        s.skipped,
                        s.coverage()
                    );
                }
                // A transient plan must still satisfy any coverage bar.
                run_batch(&scn, workers, scn.k, true, Some(1.0))
                    .map_err(|e| format!("workers {workers}: min_coverage(1.0) rejected a \
                                          fully-recovered batch: {e}"))?;
            }
            Ok(())
        });
    }
}

/// Transient faults on every page recover within the retry ladder:
/// identical answers, strictly more simulated latency (the escalating
/// retry cost is functional, charged with `obs` on and off), and — with
/// `obs` on — retry/recovery counters that account for the work.
#[test]
fn transient_retries_charge_latency_but_not_answers() {
    let model = zoo::textqa().seeded_metric(41);
    let features: Vec<Tensor> = (0..32).map(|i| model.random_feature(i)).collect();
    let probe = model.random_feature(9_001);

    let run = |faulted: bool| {
        let mut store = DeepStore::in_memory(DeepStoreConfig::small());
        store.disable_qc();
        let db = store.write_db(&features).unwrap();
        let mid = store.load_model(&ModelGraph::from_model(&model)).unwrap();
        if faulted {
            // Every page transient-faults its first two read attempts;
            // the default 4-attempt ladder recovers all of them.
            store.inject_faults(
                FaultPlan::none()
                    .transient(1.0, 7)
                    .transient_max_failures(2),
            );
        }
        let qid = store
            .query(QueryRequest::new(probe.clone(), mid, db).k(5))
            .unwrap();
        let r = store.results(qid).unwrap();
        (r, store.stats())
    };

    let (clean, _) = run(false);
    let (faulted, stats) = run(true);

    let pairs = |r: &deepstore::core::QueryResult| -> Ranked {
        r.top_k
            .iter()
            .map(|h| (h.feature_index, h.score.to_bits()))
            .collect()
    };
    assert_eq!(pairs(&clean), pairs(&faulted), "answers must be identical");
    assert_eq!(faulted.skipped, 0);
    assert_eq!(faulted.coverage, 1.0);
    assert!(!faulted.degraded);
    assert!(
        faulted.elapsed > clean.elapsed,
        "the retry ladder must charge simulated latency: {:?} !> {:?}",
        faulted.elapsed,
        clean.elapsed
    );
    if cfg!(feature = "obs") {
        assert!(stats.flash.read_retries > 0, "retries were counted");
        assert!(stats.flash.reads_recovered > 0, "recoveries were counted");
        assert!(stats.flash.read_retry_ns > 0, "retry stall was counted");
        assert_eq!(stats.flash.lost_pages, 0);
    }
}

/// Permanent page faults degrade answers until `recover_faults` remaps
/// the retired pages. The random plan faults pages device-wide, so a
/// remap destination can itself be faulty — each query→recover round
/// retires what the scan just tripped over, and the drive converges to
/// full coverage, bit-identical to a never-faulted store.
#[test]
fn permanent_faults_heal_after_explicit_recovery() {
    let model = zoo::textqa().seeded_metric(23);
    let features: Vec<Tensor> = (0..48).map(|i| model.random_feature(i)).collect();
    let probe = model.random_feature(8_101);

    let mut clean = DeepStore::in_memory(DeepStoreConfig::small());
    clean.disable_qc();
    let cdb = clean.write_db(&features).unwrap();
    let cmid = clean.load_model(&ModelGraph::from_model(&model)).unwrap();
    let cq = clean
        .query(QueryRequest::new(probe.clone(), cmid, cdb).k(6))
        .unwrap();
    let reference = clean.results(cq).unwrap();

    let mut store = DeepStore::in_memory(DeepStoreConfig::small());
    store.disable_qc();
    let db = store.write_db(&features).unwrap();
    let mid = store.load_model(&ModelGraph::from_model(&model)).unwrap();
    let geometry = store.config().ssd.geometry;
    store.inject_faults(FaultPlan::random(&geometry, 0.25, 11));

    let q1 = store
        .query(QueryRequest::new(probe.clone(), mid, db).k(6))
        .unwrap();
    let before = store.results(q1).unwrap();
    assert!(before.degraded, "the permanent-fault plan must degrade");
    assert!(before.coverage < 1.0);

    // Recovery is explicit — a maintenance op, like GC. It only drains
    // what reads have queued, so healing is iterative: recover, re-scan
    // (which trips any faulty remap destinations), recover again.
    let mut remapped_total = 0;
    let mut healed = None;
    for _ in 0..16 {
        let report = store.recover_faults();
        assert_eq!(report.pages_lost, 0, "remappable faults lose nothing");
        remapped_total += report.pages_remapped;
        let q = store
            .query(QueryRequest::new(probe.clone(), mid, db).k(6))
            .unwrap();
        let r = store.results(q).unwrap();
        if !r.degraded {
            healed = Some(r);
            break;
        }
    }
    let after = healed.expect("recovery converges to full coverage");
    assert!(remapped_total > 0, "remap path must fire");
    assert_eq!(after.coverage, 1.0);
    let pairs = |r: &deepstore::core::QueryResult| -> Ranked {
        r.top_k
            .iter()
            .map(|h| (h.feature_index, h.score.to_bits()))
            .collect()
    };
    assert_eq!(
        pairs(&after),
        pairs(&reference),
        "healed store answers bit-identically to a never-faulted one"
    );
}

/// A dead channel is an outage domain: no remap source exists, the data
/// is lost, and recovery cannot restore coverage — the store keeps
/// serving honest degraded answers instead.
#[test]
fn dead_channel_outage_stays_degraded_after_recovery() {
    // 256 tir features fill two blocks, so the database spans two
    // channels and a dead channel loses exactly half of it.
    let model = zoo::tir().seeded_metric(5);
    let features: Vec<Tensor> = (0..256).map(|i| model.random_feature(i)).collect();
    let mut store = DeepStore::in_memory(DeepStoreConfig::small());
    store.disable_qc();
    let db = store.write_db(&features).unwrap();
    let mid = store.load_model(&ModelGraph::from_model(&model)).unwrap();
    store.inject_faults(FaultPlan::none().dead_channel(0));

    let probe = model.random_feature(7_777);
    let q1 = store
        .query(QueryRequest::new(probe.clone(), mid, db).k(8))
        .unwrap();
    let before = store.results(q1).unwrap();
    assert!(before.degraded);
    assert!(before.coverage > 0.0 && before.coverage < 1.0);

    // Outage pages have no remap source, so they never enter the
    // retirement queue: recovery is a no-op, not a resurrection.
    let report = store.recover_faults();
    assert!(report.is_empty(), "an outage has nothing to recover");

    let q2 = store.query(QueryRequest::new(probe, mid, db).k(8)).unwrap();
    let after = store.results(q2).unwrap();
    assert_eq!(
        after.coverage.to_bits(),
        before.coverage.to_bits(),
        "recovery cannot resurrect an outage domain"
    );
    assert!(after.degraded);
    if cfg!(feature = "obs") {
        assert!(store.stats().degraded_queries >= 2);
    }
}

/// Sanity for the artifact plumbing itself: a recorded case lands in
/// the chaos-seed directory with the scenario and the violation.
#[test]
fn failing_cases_are_recorded_for_ci_artifacts() {
    let dir = chaos_seed_dir();
    let path = dir.join("__plumbing_check__.txt");
    std::fs::remove_file(&path).ok();
    record_failing_case(
        "__plumbing_check__",
        "scenario { n: 42 }",
        "coverage off by one",
    );
    let recorded = std::fs::read_to_string(&path).expect("seed file written");
    assert!(recorded.contains("scenario { n: 42 }"));
    assert!(recorded.contains("coverage off by one"));
    std::fs::remove_file(&path).ok();
    let mut roundtrip = String::new();
    let _ = write!(roundtrip, "{}", dir.display());
    assert!(roundtrip.ends_with("chaos-seeds"));
}
