//! Integration tests for the wire protocol and the runtime scheduler.

use deepstore::core::proto::{
    decode_command, decode_response, encode_command, Command, Device, HostClient, ProtoError,
    Response,
};
use deepstore::core::runtime::Runtime;
use deepstore::core::{
    AcceleratorLevel, DbId, DeepStore, DeepStoreConfig, QueryCacheConfig, QueryRequest,
};
use deepstore::flash::SimDuration;
use deepstore::nn::{zoo, ModelGraph, Tensor};
use proptest::prelude::*;

#[test]
fn full_session_over_the_wire_matches_direct_api() {
    let model = zoo::tir().seeded_metric(12);
    let features: Vec<Tensor> = (0..48).map(|i| model.random_feature(i)).collect();
    let probe = model.random_feature(7); // duplicate of feature 7

    // Direct API.
    let mut direct = DeepStore::in_memory(DeepStoreConfig::small());
    direct.disable_qc();
    let db = direct.write_db(&features).unwrap();
    let mid = direct.load_model(&ModelGraph::from_model(&model)).unwrap();
    let qid = direct
        .query(QueryRequest::new(probe.clone(), mid, db).k(5))
        .unwrap();
    let direct_result = direct.results(qid).unwrap();

    // Wire protocol.
    let mut device = Device::new(DeepStoreConfig::small());
    device.store_mut().disable_qc();
    let mut host = HostClient::new(&mut device);
    let wdb = host.write_db(&features).unwrap();
    let wmid = host.load_model(&ModelGraph::from_model(&model)).unwrap();
    let wqid = host
        .query(&probe, 5, wmid, wdb, AcceleratorLevel::Channel, false)
        .unwrap();
    let wire_result = host.get_results(wqid).unwrap();

    let direct_ids: Vec<u64> = direct_result
        .top_k
        .iter()
        .map(|h| h.feature_index)
        .collect();
    let wire_ids: Vec<u64> = wire_result.top_k.iter().map(|h| h.feature_index).collect();
    assert_eq!(direct_ids, wire_ids);
    assert_eq!(direct_result.elapsed, wire_result.elapsed);
}

#[test]
fn device_survives_command_reordering_and_bad_handles() {
    let mut device = Device::new(DeepStoreConfig::small());
    let mut host = HostClient::new(&mut device);
    // getResults before any query.
    assert!(matches!(
        host.get_results(deepstore::core::QueryId(1)),
        Err(ProtoError::Device(_))
    ));
    // query before loadModel.
    let model = zoo::textqa().seeded(1);
    let db = host.write_db(&[model.random_feature(0)]).unwrap();
    assert!(matches!(
        host.query(
            &model.random_feature(1),
            1,
            deepstore::core::ModelId(9),
            db,
            AcceleratorLevel::Ssd,
            false
        ),
        Err(ProtoError::Device(_))
    ));
    // append to a foreign id.
    assert!(host
        .append_db(DbId(1234), &[model.random_feature(2)])
        .is_err());
}

#[test]
fn runtime_trace_replay_produces_consistent_stats() {
    let model = zoo::textqa().seeded(5);
    let mut store = DeepStore::in_memory(DeepStoreConfig::small());
    store.set_qc(QueryCacheConfig {
        capacity: 8,
        threshold: 0.10,
        qcn_accuracy: 1.0,
    });
    let features: Vec<Tensor> = (0..32).map(|i| model.random_feature(i)).collect();
    let db = store.write_db(&features).unwrap();
    let mid = store.load_model(&ModelGraph::from_model(&model)).unwrap();

    let mut rt = Runtime::new(store);
    // A bursty trace: 12 queries, 4 distinct QFVs (expect cache hits).
    for i in 0..12u64 {
        rt.submit_at(
            SimDuration::from_micros(i * 5),
            QueryRequest::new(model.random_feature(i % 4), mid, db).k(3),
        );
    }
    rt.run_to_completion().unwrap();
    let stats = rt.stats().unwrap();
    assert_eq!(stats.completed, 12);
    assert!(stats.cache_hits >= 8, "hits = {}", stats.cache_hits);
    // Every record is internally consistent.
    for r in rt.records() {
        assert!(r.start >= r.arrival);
        assert!(r.completion > r.start);
        assert_eq!(r.latency(), r.queueing() + r.service());
    }
    // Records are serially ordered on the fabric.
    for w in rt.records().windows(2) {
        assert!(w[1].start >= w[0].completion);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Arbitrary bytes never crash the device; it always answers with a
    /// well-formed response frame.
    #[test]
    fn device_is_total_on_arbitrary_bytes(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let mut device = Device::new(DeepStoreConfig::small());
        let resp = device.handle(&bytes);
        let parsed = decode_response(&resp).unwrap();
        prop_assert!(matches!(parsed, Response::Error(_)));
    }

    /// Command frames round-trip for arbitrary read ranges.
    #[test]
    fn read_db_commands_roundtrip(db in 0u64..1000, start in 0u64..1000, num in 0u64..1000) {
        let cmd = Command::ReadDb { db: DbId(db), start, num };
        let decoded = decode_command(&encode_command(&cmd)).unwrap();
        prop_assert_eq!(decoded, cmd);
    }
}
