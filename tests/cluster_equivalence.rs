//! Scatter-gather equivalence: a replicated cluster is a layout
//! choice, not a semantic one.
//!
//! The property pinned here is the cluster's core contract: for any
//! drive count N, replication factor R, accelerator level, and
//! write-then-append history, the cluster's merged top-K — global
//! indices and score bits — is **bit-identical** to a single device
//! scanning the same features in the same order. That holds with the
//! int8 pruning cascade engaged (the default) and on the exact path,
//! and because every store here goes through `DeepStore::in_memory`,
//! the whole suite runs unchanged against the mmap image backend under
//! `DEEPSTORE_BACKEND=mmap` (CI runs both).
//!
//! A plain test closes the loop on durability: a cluster built with
//! `create_persistent`, flushed, and reopened with `open_persistent`
//! answers bit-identically to its pre-reopen self and to the
//! single-device reference — including after losing a drive, since
//! replication survives the image round-trip too.

use deepstore::core::{
    AcceleratorLevel, ClusterQueryRequest, DeepStore, DeepStoreCluster, DeepStoreConfig,
    QueryRequest,
};
use deepstore::nn::{zoo, Model, ModelGraph, Tensor};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

const APPS: [&str; 3] = ["textqa", "tir", "mir"];

const LEVELS: [AcceleratorLevel; 2] = [AcceleratorLevel::Ssd, AcceleratorLevel::Channel];

/// Ranked hits reduced to comparable bits: `(global index, score bits)`.
type Ranked = Vec<(u64, u32)>;

#[derive(Debug, Clone)]
struct Case {
    app: &'static str,
    model_seed: u64,
    /// Features in the initial `write_db`.
    n: u64,
    /// Features appended afterwards, so partitions hold extra extents.
    appended: u64,
    k: usize,
    drives: usize,
    replicas: usize,
    level: AcceleratorLevel,
    q_seed: u64,
}

fn features_for(model: &Model, case: &Case) -> (Vec<Tensor>, Vec<Tensor>) {
    let written = (0..case.n).map(|i| model.random_feature(i)).collect();
    let appended = (0..case.appended)
        .map(|i| model.random_feature(case.n + i))
        .collect();
    (written, appended)
}

fn probe(model: &Model, case: &Case) -> Tensor {
    model.random_feature(0xE0_0000 + case.q_seed)
}

/// Single-device top-K of the same write-then-append history, as
/// comparable bits.
fn single_device_topk(case: &Case, exact: bool) -> Ranked {
    let model = zoo::by_name(case.app)
        .expect("known app")
        .seeded_metric(case.model_seed);
    let mut store = DeepStore::in_memory(DeepStoreConfig::small());
    store.disable_qc();
    let (written, appended) = features_for(&model, case);
    let db = store.write_db(&written).expect("write db");
    store.append_db(db, &appended).expect("append db");
    let mid = store
        .load_model(&ModelGraph::from_model(&model))
        .expect("load model");
    let mut req = QueryRequest::new(probe(&model, case), mid, db)
        .k(case.k)
        .level(case.level);
    if exact {
        req = req.exact();
    }
    let qid = store.query(req).expect("reference query");
    store
        .results(qid)
        .expect("reference result")
        .top_k
        .iter()
        .map(|h| (h.feature_index, h.score.to_bits()))
        .collect()
}

/// Cluster top-K of the same history, as comparable bits keyed by the
/// metadata-derived `global_index`.
fn cluster_topk(case: &Case, exact: bool) -> Ranked {
    let model = zoo::by_name(case.app)
        .expect("known app")
        .seeded_metric(case.model_seed);
    let mut cluster =
        DeepStoreCluster::with_replication(case.drives, case.replicas, DeepStoreConfig::small());
    let (written, appended) = features_for(&model, case);
    let db = cluster.write_db(&written).expect("write db");
    cluster.append_db(db, &appended).expect("append db");
    let mid = cluster
        .load_model(&ModelGraph::from_model(&model))
        .expect("load model");
    let r = cluster
        .query(
            ClusterQueryRequest::new(probe(&model, case), mid, db)
                .k(case.k)
                .level(case.level)
                .exact(exact),
        )
        .expect("cluster query");
    assert_eq!(r.coverage, 1.0, "healthy cluster must cover everything");
    assert!(!r.degraded);
    r.top_k
        .iter()
        .map(|h| (h.global_index, h.hit.score.to_bits()))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// cluster(N, R) ≡ single device, bit for bit, on both the cascade
    /// and the exact path.
    #[test]
    fn cluster_topk_matches_single_device_bitwise(
        (app_idx, model_seed, n, appended, k, q_seed) in
            (0usize..3, 0u64..1_000_000, 1u64..80, 0u64..20, 1usize..10, 0u64..1_000_000),
        (drives, replica_sel, level_idx) in (1usize..=4, 0usize..4, 0usize..2),
    ) {
        let case = Case {
            app: APPS[app_idx],
            model_seed,
            n: n.max(drives as u64),
            appended,
            k,
            drives,
            replicas: 1 + replica_sel % drives,
            level: LEVELS[level_idx],
            q_seed,
        };
        for exact in [false, true] {
            let reference = single_device_topk(&case, exact);
            let clustered = cluster_topk(&case, exact);
            prop_assert_eq!(
                &clustered,
                &reference,
                "cluster(N={}, R={}) diverged from the single device (exact={}, case {:?})",
                case.drives,
                case.replicas,
                exact,
                case
            );
        }
    }

    /// The cascade path through the cluster equals the exact path
    /// through the cluster — pruning composes with scatter-gather.
    #[test]
    fn cluster_cascade_matches_cluster_exact(
        (model_seed, n, k, drives, q_seed) in
            (0u64..1_000_000, 4u64..64, 1usize..8, 2usize..=4, 0u64..1_000_000),
    ) {
        let case = Case {
            app: "textqa",
            model_seed,
            n,
            appended: n / 3,
            k,
            drives,
            replicas: 2.min(drives),
            level: AcceleratorLevel::Channel,
            q_seed,
        };
        prop_assert_eq!(cluster_topk(&case, false), cluster_topk(&case, true));
    }
}

/// Unique temp directory per call without wall-clock or RNG use.
fn temp_cluster_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "deepstore-cluster-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

struct Cleanup(PathBuf);
impl Drop for Cleanup {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// `create_persistent` → populate → `flush` → drop → `open_persistent`
/// answers bit-identically, before and after losing a drive.
#[test]
fn persistent_cluster_reopens_bit_identically() {
    let case = Case {
        app: "textqa",
        model_seed: 77,
        n: 41,
        appended: 13,
        k: 7,
        drives: 3,
        replicas: 2,
        level: AcceleratorLevel::Channel,
        q_seed: 5,
    };
    let reference = single_device_topk(&case, false);
    let dir = temp_cluster_dir("reopen");
    let _cleanup = Cleanup(dir.clone());

    let model = zoo::by_name(case.app)
        .unwrap()
        .seeded_metric(case.model_seed);
    let (written, appended) = features_for(&model, &case);
    let before = {
        let mut cluster = DeepStoreCluster::create_persistent(
            &dir,
            case.drives,
            case.replicas,
            DeepStoreConfig::small(),
        )
        .expect("create persistent cluster");
        let db = cluster.write_db(&written).unwrap();
        cluster.append_db(db, &appended).unwrap();
        let mid = cluster.load_model(&ModelGraph::from_model(&model)).unwrap();
        let r = cluster
            .query(
                ClusterQueryRequest::new(probe(&model, &case), mid, db)
                    .k(case.k)
                    .level(case.level),
            )
            .unwrap();
        cluster.flush().expect("flush cluster");
        r.top_k
            .iter()
            .map(|h| (h.global_index, h.hit.score.to_bits()))
            .collect::<Ranked>()
    };
    assert_eq!(before, reference, "persistent cluster diverged pre-reopen");

    let mut reopened = DeepStoreCluster::open_persistent(&dir).expect("reopen cluster");
    assert_eq!(reopened.drives(), case.drives);
    // Handles are dense indices, restored in manifest order: the one
    // database and one model created above come back as id 0.
    let db = deepstore::core::ClusterDbId(0);
    let mid = deepstore::core::ClusterModelId(0);
    assert_eq!(reopened.partitions(db).unwrap(), case.drives);
    assert_eq!(reopened.db_features(db).unwrap(), case.n + case.appended);
    let run = |cluster: &mut DeepStoreCluster| -> Ranked {
        let r = cluster
            .query(
                ClusterQueryRequest::new(probe(&model, &case), mid, db)
                    .k(case.k)
                    .level(case.level),
            )
            .unwrap();
        assert_eq!(r.coverage, 1.0);
        r.top_k
            .iter()
            .map(|h| (h.global_index, h.hit.score.to_bits()))
            .collect()
    };
    assert_eq!(run(&mut reopened), reference, "reopened cluster diverged");

    // Replication survives the image round-trip: kill a drive and the
    // reopened cluster still answers in full, bit-identically.
    reopened.kill_drive(0);
    assert_eq!(
        run(&mut reopened),
        reference,
        "reopened cluster lost coverage after one drive of two replicas"
    );
}
