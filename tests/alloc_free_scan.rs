//! Counting-allocator proof that the scan hot path is allocation-free.
//!
//! A global counting allocator wraps `System` and counts every
//! allocation (and growing reallocation). The single test in this file
//! (one `#[test]` only — concurrent tests would pollute the counter)
//! asserts two things:
//!
//! 1. `Model::similarity_scratch` performs **zero** heap allocations
//!    after warm-up — the whole forward pass lives in the
//!    `InferenceScratch` arena;
//! 2. the steady-state scan loop allocates **zero** per scored feature:
//!    doubling the database size does not grow a scan's allocation count
//!    beyond the fixed shard-plan/sorter overhead (a strict differential
//!    bound — an allocating path would add several allocations per extra
//!    feature, i.e. hundreds here).

use deepstore_core::config::DeepStoreConfig;
use deepstore_core::engine::{DbId, Engine};
use deepstore_nn::{zoo, InferenceScratch, Model, Tensor};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Builds a sealed single-worker engine over `n` textqa features.
fn engine_with(n: u64) -> (Engine, Model, DbId) {
    let model = zoo::textqa().seeded(7);
    let mut engine = Engine::new(DeepStoreConfig::small().with_parallelism(1));
    let features: Vec<Tensor> = (0..n).map(|i| model.random_feature(i)).collect();
    let db = engine.write_db(&features).unwrap();
    engine.seal_db(db).unwrap();
    (engine, model, db)
}

/// Allocations performed by one `scan_top_k` call.
fn scan_allocations(engine: &Engine, model: &Model, db: DbId, probe: &Tensor, k: usize) -> u64 {
    let before = allocations();
    let top = engine.scan_top_k(db, model, probe, k).unwrap();
    let after = allocations();
    assert_eq!(top.len(), k);
    after - before
}

#[test]
fn scan_hot_path_is_allocation_free() {
    // Part 1: a warmed-up scratch inference allocates nothing at all.
    let model = zoo::textqa().seeded(1);
    let mut scratch = InferenceScratch::for_model(&model);
    let q = model.random_feature(1);
    let items: Vec<Tensor> = (2..12).map(|i| model.random_feature(i)).collect();
    let warmup = model
        .similarity_scratch(&q, items[0].data(), &mut scratch)
        .unwrap();
    assert!(warmup.is_finite());

    // The counter is process-global, so a harness thread allocating
    // concurrently can pollute a single measurement; the steady-state
    // claim holds if any attempt observes zero, so take the minimum.
    let mut steady_state = u64::MAX;
    for _ in 0..5 {
        let before = allocations();
        for item in &items {
            model
                .similarity_scratch(&q, item.data(), &mut scratch)
                .unwrap();
        }
        steady_state = steady_state.min(allocations() - before);
        if steady_state == 0 {
            break;
        }
    }
    assert_eq!(
        steady_state, 0,
        "similarity_scratch allocated on the steady-state path"
    );

    // Part 2: zero allocations per scored feature in the scan loop.
    // Doubling the feature count adds 256 extra scored features; if the
    // per-feature loop allocated even once per feature, the difference
    // would be >= 256. The allowed slack covers the fixed per-scan
    // overhead only (shard-plan growth, sorter, per-shard scratch).
    let (small_engine, model, small_db) = engine_with(256);
    let (large_engine, _, large_db) = engine_with(512);
    let probe = model.random_feature(9_999);

    // Warm both scans once (thread-local / lazy one-time init).
    scan_allocations(&small_engine, &model, small_db, &probe, 8);
    scan_allocations(&large_engine, &model, large_db, &probe, 8);

    let small = scan_allocations(&small_engine, &model, small_db, &probe, 8);
    let large = scan_allocations(&large_engine, &model, large_db, &probe, 8);
    assert!(
        large <= small + 64,
        "scan allocations grew with database size: {small} allocs at 256 \
         features vs {large} at 512 — the per-feature loop is allocating"
    );
    // And the per-feature budget is (amortized) zero: even the whole
    // 512-feature scan stays under a small constant.
    let per_feature = large as f64 / 512.0;
    assert!(
        per_feature < 0.25,
        "scan performed {large} allocations for 512 features ({per_feature:.2}/feature)"
    );
}
