//! Equivalence harness for the int8 bound-then-refine pruning cascade.
//!
//! The cascade's contract has two halves, and both are checked here
//! with randomized inputs:
//!
//! * **Bound soundness.** For any linear-foldable model, query and
//!   feature, the int8 upper bound is ≥ the exact f32 similarity —
//!   always, not statistically. This is what makes recall@K exactly
//!   1.0 by construction: a feature is pruned only when its bound
//!   (hence its score) falls strictly below the running K-th best.
//! * **Bit-identity.** The cascade's ranked top-K — ids, scores,
//!   order — equals the exact path's bit-for-bit, at every
//!   `parallelism` setting (1/2/4/auto), with and without armed fault
//!   plans degrading coverage. So do the fault counts: pruned
//!   features still stream their flash pages.
//!
//! Run with `DEEPSTORE_FORCE_SCALAR=1` to exercise the scalar kernel
//! dispatch arm; CI runs both.

use deepstore_core::config::DeepStoreConfig;
use deepstore_core::engine::{DbId, Engine};
use deepstore_core::{DeepStore, QueryRequest};
use deepstore_flash::fault::FaultPlan;
use deepstore_nn::{
    quantize_feature, zoo, Activation, BoundScorer, ElementWiseOp, MergeOp, Model, ModelBuilder,
    ModelGraph, Tensor,
};
use proptest::prelude::*;

/// Worker counts exercised against the serial cascade. `0` means "one
/// worker per host core".
const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 0];

const MERGES: [MergeOp; 4] = [
    MergeOp::Concat,
    MergeOp::ElementWise(ElementWiseOp::Add),
    MergeOp::ElementWise(ElementWiseOp::Sub),
    MergeOp::ElementWise(ElementWiseOp::Mul),
];

/// A random linear-foldable similarity model: any merge, a stack of
/// identity-activated dense layers.
fn linear_model(merge: MergeOp, dims: &[usize], seed: u64) -> Model {
    let mut b = ModelBuilder::new("lin", dims[0]).merge(merge);
    let mut inp = match merge {
        MergeOp::Concat => dims[0] * 2,
        MergeOp::ElementWise(_) => dims[0],
    };
    for &out in &dims[1..] {
        b = b.dense(inp, out, Activation::Identity);
        inp = out;
    }
    b.build().seeded(seed)
}

/// Builds a sealed engine with `n` random features from `app`'s model.
fn engine_with(app: &str, model_seed: u64, n: u64, parallelism: usize) -> (Engine, Model, DbId) {
    let model = zoo::by_name(app)
        .expect("known app")
        .seeded_metric(model_seed);
    let mut engine = Engine::new(DeepStoreConfig::small().with_parallelism(parallelism));
    let features: Vec<Tensor> = (0..n).map(|i| model.random_feature(i)).collect();
    let db = engine.write_db(&features).unwrap();
    engine.seal_db(db).unwrap();
    (engine, model, db)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Bound soundness over random linear models: merge type, depth,
    /// weights, query and features are all randomized, and the int8
    /// upper bound must dominate the exact score every time.
    #[test]
    fn int8_bound_dominates_exact_score(
        (merge_idx, dims_idx, model_seed, q_seed) in (
            0usize..4,
            0usize..3,
            0u64..1_000_000,
            0u64..1_000_000,
        )
    ) {
        let dims: &[usize] = [&[24usize, 6][..], &[16, 12, 5], &[10, 8, 8, 1]][dims_idx];
        let model = linear_model(MERGES[merge_idx], dims, model_seed);
        let query = model.random_feature(q_seed);
        let bs = BoundScorer::new(&model, &query).expect("linear models fold");
        for fi in 0..24u64 {
            let item = model.random_feature(q_seed ^ (0xF00D + fi));
            let fq = quantize_feature(item.data());
            let exact = model.similarity(&query, &item).unwrap();
            let ub = bs.upper_bound(&fq);
            prop_assert!(
                ub >= exact,
                "bound {} < exact {} (merge {:?}, dims {:?}, feature {})",
                ub, exact, MERGES[merge_idx], dims, fi
            );
        }
    }

    /// The cascade's top-K is bit-identical to the exact path at every
    /// parallelism setting, and its prune/rescore counts are identical
    /// across worker counts too (they are sums over the physically
    /// determined shard plan).
    #[test]
    fn cascade_topk_matches_exact_bitwise(
        (model_seed, n, k, q_seed) in (
            0u64..1_000_000,
            1u64..96,
            0usize..12,
            0u64..1_000_000,
        )
    ) {
        let (mut engine, model, db) = engine_with("textqa", model_seed, n, 1);
        let probe = model.random_feature(q_seed ^ 0x5EED);
        let (exact, exact_faults, exact_stats) = engine
            .scan_top_k_with(db, &model, &probe, k, true)
            .unwrap();
        // The exact path never consults the bound.
        prop_assert_eq!(exact_stats.pruned, 0);
        prop_assert_eq!(exact_stats.rescored, 0);

        let mut baseline_stats = None;
        for workers in WORKER_COUNTS {
            engine.set_parallelism(workers);
            let (cascade, faults, stats) = engine
                .scan_top_k_with(db, &model, &probe, k, false)
                .unwrap();
            prop_assert_eq!(&exact, &cascade, "ranking diverged at parallelism {}", workers);
            prop_assert_eq!(&exact_faults, &faults);
            match baseline_stats {
                None => baseline_stats = Some(stats),
                Some(b) => prop_assert_eq!(
                    b, stats,
                    "cascade stats diverged at parallelism {}", workers
                ),
            }
        }
    }

    /// Non-foldable models (tir has ReLU tails) fall back to the exact
    /// path: identical results, zero cascade decisions.
    #[test]
    fn non_foldable_models_fall_back_to_exact(
        (model_seed, n, q_seed) in (0u64..1_000_000, 1u64..32, 0u64..1_000_000)
    ) {
        let (engine, model, db) = engine_with("tir", model_seed, n, 1);
        let probe = model.random_feature(q_seed ^ 0x7E57);
        let (exact, _, _) = engine.scan_top_k_with(db, &model, &probe, 4, true).unwrap();
        let (cascade, _, stats) = engine.scan_top_k_with(db, &model, &probe, 4, false).unwrap();
        prop_assert_eq!(&exact, &cascade);
        prop_assert_eq!(stats.pruned, 0);
        prop_assert_eq!(stats.rescored, 0);
    }

    /// Armed fault plans: with uncorrectable reads degrading coverage,
    /// the cascade still matches the exact path bit-for-bit — pruned
    /// features stream their pages, so the skip accounting is shared —
    /// at every worker count.
    #[test]
    fn cascade_matches_exact_under_armed_faults(
        (model_seed, n, fault_seed) in (0u64..1_000_000, 16u64..96, 0u64..1_000_000)
    ) {
        let scan_at = |workers: usize, exact: bool| {
            let (mut engine, model, db) = engine_with("textqa", model_seed, n, workers);
            let geometry = engine.config().ssd.geometry;
            engine.inject_faults(FaultPlan::random(&geometry, 0.10, fault_seed));
            let probe = model.random_feature(model_seed ^ 0xFA017);
            let (top, faults, stats) = engine
                .scan_top_k_with(db, &model, &probe, 6, exact)
                .unwrap();
            (top, faults, stats, engine.unreadable_skipped())
        };

        let (exact_top, exact_faults, _, exact_skipped) = scan_at(1, true);
        let mut baseline_stats = None;
        for workers in WORKER_COUNTS {
            let (top, faults, stats, skipped) = scan_at(workers, false);
            prop_assert_eq!(&exact_top, &top, "ranking diverged at parallelism {}", workers);
            prop_assert_eq!(&exact_faults, &faults);
            prop_assert_eq!(exact_skipped, skipped);
            match baseline_stats {
                None => baseline_stats = Some(stats),
                Some(b) => prop_assert_eq!(b, stats),
            }
        }
    }
}

/// End-to-end through the public API: `QueryRequest::exact()` and the
/// default cascade return identical hits, batches mix freely, and the
/// device's stats surface the pruning it actually did.
#[test]
fn api_exact_and_cascade_requests_agree() {
    let model = zoo::textqa().seeded_metric(7);
    let mut store = DeepStore::in_memory(DeepStoreConfig::small());
    store.disable_qc();
    let features: Vec<Tensor> = (0..256).map(|i| model.random_feature(i)).collect();
    let db = store.write_db(&features).unwrap();
    let mid = store.load_model(&ModelGraph::from_model(&model)).unwrap();

    for probe_seed in [900u64, 901, 902] {
        let probe = model.random_feature(probe_seed);
        let reqs = vec![
            QueryRequest::new(probe.clone(), mid, db).k(8),
            QueryRequest::new(probe.clone(), mid, db).k(8).exact(),
        ];
        let ids = store.query_batch(&reqs).unwrap();
        let cascade = store.results(ids[0]).unwrap();
        let exact = store.results(ids[1]).unwrap();
        assert_eq!(cascade.top_k, exact.top_k, "probe {probe_seed} diverged");
    }

    let stats = store.stats();
    // With `obs` off the counters read zero; with it on, a 256-feature
    // db at k=8 must have pruned something.
    if stats.queries > 0 {
        assert!(
            stats.pruned_features > 0,
            "cascade pruned nothing on a 256-feature db"
        );
        assert!(stats.rescored_features > 0 || stats.pruned_features > 0);
    }
}
