//! Determinism contract for the telemetry layer.
//!
//! Metrics are recorded from worker threads with relaxed atomics, but
//! every operation is a commutative `fetch_add`/`fetch_max` and the
//! shard plan is fixed by physical placement — so a post-workload
//! [`MetricsSnapshot`] (counters, histogram buckets, flash event
//! counts) must be identical at every `parallelism` setting, with and
//! without injected read faults. Trace timelines are driven by the
//! simulated clock, so they must be byte-identical across runs too,
//! with spans on each lane properly nested.

use deepstore_core::config::DeepStoreConfig;
use deepstore_core::{DeepStore, QueryRequest};
use deepstore_flash::fault::FaultPlan;
use deepstore_nn::{zoo, ModelGraph, Tensor};
use deepstore_obs::MetricsSnapshot;
use proptest::prelude::*;
use serde::Value;

const WORKER_COUNTS: [usize; 3] = [2, 4, 0];

const APPS: [&str; 3] = ["textqa", "tir", "mir"];

/// Per-query `(feature_index, formatted_score)` rankings.
type Rankings = Vec<Vec<(u64, String)>>;

/// Runs a mixed workload (one single query, one batch of three) and
/// returns everything observable: device stats, result rankings and
/// per-query skip counts.
fn run_workload(
    app: &str,
    model_seed: u64,
    n: u64,
    parallelism: usize,
    fault_seed: Option<u64>,
) -> (deepstore_core::DeviceStats, Rankings, Vec<u64>) {
    let model = zoo::by_name(app)
        .expect("known app")
        .seeded_metric(model_seed);
    let mut store = DeepStore::in_memory(DeepStoreConfig::small().with_parallelism(parallelism));
    if let Some(seed) = fault_seed {
        let geometry = store.config().ssd.geometry;
        store.inject_faults(FaultPlan::random(&geometry, 0.10, seed));
    }
    let features: Vec<Tensor> = (0..n).map(|i| model.random_feature(i)).collect();
    let db = store.write_db(&features).unwrap();
    let mid = store.load_model(&ModelGraph::from_model(&model)).unwrap();

    let single = store
        .query(QueryRequest::new(model.random_feature(5_000), mid, db).k(4))
        .unwrap();
    let batch: Vec<QueryRequest> = (0..3)
        .map(|i| QueryRequest::new(model.random_feature(6_000 + i), mid, db).k(4))
        .collect();
    let ids = store.query_batch(&batch).unwrap();

    let mut rankings = Vec::new();
    let mut skips = Vec::new();
    for id in std::iter::once(single).chain(ids) {
        let r = store.results(id).unwrap();
        skips.push(r.skipped);
        rankings.push(
            r.top_k
                .iter()
                .map(|h| (h.feature_index, format!("{:.6}", h.score)))
                .collect(),
        );
    }
    (store.stats(), rankings, skips)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The full metrics snapshot — counters, histogram buckets, flash
    /// page-read counts — is identical at every parallelism setting.
    #[test]
    fn metrics_identical_across_parallelism(
        (app_idx, model_seed, n) in (0usize..3, 0u64..1_000_000, 8u64..48)
    ) {
        let (baseline, base_ranked, base_skips) =
            run_workload(APPS[app_idx], model_seed, n, 1, None);
        for workers in WORKER_COUNTS {
            let (stats, ranked, skips) =
                run_workload(APPS[app_idx], model_seed, n, workers, None);
            prop_assert_eq!(&baseline, &stats,
                "stats diverged at parallelism {}", workers);
            prop_assert_eq!(&base_ranked, &ranked);
            prop_assert_eq!(&base_skips, &skips);
        }
    }

    /// Fault injection changes the counts — but still deterministically:
    /// the same fault plan yields the same snapshot at every worker
    /// count, and per-query skip counts sum to the device-wide total.
    #[test]
    fn metrics_identical_across_parallelism_under_faults(
        (model_seed, n, fault_seed) in (0u64..1_000_000, 8u64..48, 0u64..1_000_000)
    ) {
        let (baseline, base_ranked, base_skips) =
            run_workload("textqa", model_seed, n, 1, Some(fault_seed));
        // The single query and the batch each run one flash pass, so the
        // device-wide skip total is the sum over distinct passes: the
        // single query's count plus the batch group's (shared by its
        // members) counted once.
        let passes_total = base_skips[0] + base_skips[1];
        prop_assert_eq!(baseline.unreadable_skipped, passes_total);
        for workers in WORKER_COUNTS {
            let (stats, ranked, skips) =
                run_workload("textqa", model_seed, n, workers, Some(fault_seed));
            prop_assert_eq!(&baseline, &stats,
                "faulted stats diverged at parallelism {}", workers);
            prop_assert_eq!(&base_ranked, &ranked);
            prop_assert_eq!(&base_skips, &skips);
        }
    }
}

/// Runs a traced two-batch workload and returns the trace JSON.
fn traced_run(parallelism: usize) -> String {
    let model = zoo::textqa().seeded_metric(9);
    let mut store = DeepStore::in_memory(DeepStoreConfig::small().with_parallelism(parallelism));
    store.enable_tracing();
    let features: Vec<Tensor> = (0..32).map(|i| model.random_feature(i)).collect();
    let db = store.write_db(&features).unwrap();
    let mid = store.load_model(&ModelGraph::from_model(&model)).unwrap();
    let reqs: Vec<QueryRequest> = (0..3)
        .map(|i| QueryRequest::new(model.random_feature(100 + i), mid, db).k(2))
        .collect();
    store.query_batch(&reqs).unwrap();
    store
        .query(QueryRequest::new(model.random_feature(200), mid, db).k(2))
        .unwrap();
    store.trace_json().expect("tracing enabled")
}

fn num_field(obj: &[(String, Value)], key: &str) -> f64 {
    match obj.iter().find(|(k, _)| k == key).map(|(_, v)| v) {
        Some(Value::F64(f)) => *f,
        Some(Value::U64(u)) => *u as f64,
        Some(Value::I64(i)) => *i as f64,
        other => panic!("field {key}: expected number, got {other:?}"),
    }
}

fn str_field<'a>(obj: &'a [(String, Value)], key: &str) -> &'a str {
    obj.iter()
        .find(|(k, _)| k == key)
        .and_then(|(_, v)| v.as_str())
        .unwrap_or_else(|| panic!("field {key} missing"))
}

/// The emitted trace is valid Chrome trace-event JSON: a `traceEvents`
/// array of `X`/`i` events with `ts`/`dur`/`tid`, and on any one lane
/// spans are properly nested (each starts within every still-open
/// enclosing span and ends no later than it).
#[test]
fn trace_is_valid_chrome_json_with_nested_spans() {
    let json = traced_run(1);
    let value = serde::parse_value(json.as_bytes()).expect("trace parses as JSON");
    let root = value.as_object().expect("trace root is an object");
    let events = root
        .iter()
        .find(|(k, _)| k == "traceEvents")
        .and_then(|(_, v)| match v {
            Value::Arr(items) => Some(items),
            _ => None,
        })
        .expect("traceEvents array");
    assert!(!events.is_empty());

    // Group complete spans by lane, preserving emission order.
    let mut lanes: Vec<(f64, Vec<(f64, f64)>)> = Vec::new();
    let mut names = Vec::new();
    for event in events {
        let obj = event.as_object().expect("event is an object");
        names.push(str_field(obj, "name").to_string());
        let ph = str_field(obj, "ph");
        assert!(ph == "X" || ph == "i", "unexpected phase {ph}");
        let ts = num_field(obj, "ts");
        let tid = num_field(obj, "tid");
        if ph == "X" {
            let dur = num_field(obj, "dur");
            assert!(dur >= 0.0);
            match lanes.iter_mut().find(|(t, _)| *t == tid) {
                Some((_, spans)) => spans.push((ts, ts + dur)),
                None => lanes.push((tid, vec![(ts, ts + dur)])),
            }
        }
    }
    for marker in ["batch", "validate", "scan-group formation", "merge"] {
        assert!(
            names.iter().any(|n| n == marker),
            "pipeline marker `{marker}` missing"
        );
    }
    assert!(names.iter().any(|n| n == "query"));
    assert!(names.iter().any(|n| n == "scan"));
    assert!(names.iter().any(|n| n.starts_with("flash[")));

    // Emission order puts enclosing spans first, so a stack check
    // verifies proper nesting per lane.
    for (tid, spans) in &lanes {
        let mut stack: Vec<(f64, f64)> = Vec::new();
        for &(start, end) in spans {
            while let Some(&(_, open_end)) = stack.last() {
                if start >= open_end {
                    stack.pop();
                } else {
                    break;
                }
            }
            if let Some(&(open_start, open_end)) = stack.last() {
                assert!(
                    start >= open_start && end <= open_end,
                    "lane {tid}: span [{start}, {end}] not nested in [{open_start}, {open_end}]"
                );
            }
            stack.push((start, end));
        }
    }
}

/// Traces are reproducible: byte-identical across runs and across
/// parallelism settings (timestamps come from the simulated clock).
#[test]
fn trace_is_byte_identical_across_runs_and_parallelism() {
    let baseline = traced_run(1);
    assert_eq!(baseline, traced_run(1), "trace not reproducible");
    for workers in WORKER_COUNTS {
        assert_eq!(
            baseline,
            traced_run(workers),
            "trace diverged at parallelism {workers}"
        );
    }
}

/// A snapshot round-trips through its JSON serialization.
#[test]
fn snapshot_roundtrips_through_json() {
    let (stats, _, _) = run_workload("textqa", 7, 24, 1, None);
    let json = serde_json::to_string(&stats.metrics).unwrap();
    let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
    assert_eq!(stats.metrics, back);
}

/// Histogram min/max are tracked exactly, not reconstructed from
/// bucket edges: each sits inside its histogram's first/last non-empty
/// power-of-two bucket, and every percentile estimate is clamped into
/// `[min, max]`.
#[test]
fn histogram_min_max_are_exact_and_bracket_percentiles() {
    if !cfg!(feature = "obs") {
        return; // histograms are empty stubs without the obs feature
    }
    let (stats, _, _) = run_workload("textqa", 11, 32, 1, None);
    let mut populated = 0;
    for h in &stats.metrics.histograms {
        if h.count == 0 {
            assert_eq!(
                (h.min, h.max),
                (0, 0),
                "{}: empty histogram min/max",
                h.name
            );
            continue;
        }
        populated += 1;
        assert!(h.min <= h.max, "{}: min {} > max {}", h.name, h.min, h.max);
        let (lo, hi) = deepstore_obs::histo::bucket_range(h.buckets.first().unwrap().0);
        assert!(
            (lo..=hi).contains(&h.min),
            "{}: min {} outside first bucket",
            h.name,
            h.min
        );
        let (lo, hi) = deepstore_obs::histo::bucket_range(h.buckets.last().unwrap().0);
        assert!(
            (lo..=hi).contains(&h.max),
            "{}: max {} outside last bucket",
            h.name,
            h.max
        );
        for q in [0.0, 50.0, 99.0, 100.0] {
            let p = deepstore_obs::percentile(h, q);
            assert!(
                (h.min..=h.max).contains(&p),
                "{}: p{q} = {p} escapes [{}, {}]",
                h.name,
                h.min,
                h.max
            );
        }
    }
    assert!(
        populated > 0,
        "the workload must populate at least one histogram"
    );
}
