//! Frame-level robustness for the wire protocol and the server loop.
//!
//! The contract under attack: malformed input — truncated frames,
//! oversized length prefixes, unknown opcodes, wrong magic/version,
//! mid-frame disconnects, arbitrary garbage — always produces a
//! *typed* [`ProtoError`] (or a typed `Malformed` response frame from
//! the server), never a panic, and never wedges the serving loop: the
//! server keeps answering other clients after every abuse.

use deepstore::core::proto::{
    decode_command, decode_rebalance_report, decode_response, encode_command,
    encode_rebalance_report, encode_response, read_frame, write_frame, Command, Device, HostClient,
    ProtoError, Response, WireError, HEADER_LEN, MAGIC, MAX_FRAME_LEN, PROTOCOL_VERSION,
    REBALANCE_REPORT_OPCODE, VERSION,
};
use deepstore::core::serve::{channel_transport, serve, ServeConfig, TcpClient, TcpTransport};
use deepstore::core::RebalanceReport;
use deepstore::core::{
    AcceleratorLevel, DbId, DeepStore, DeepStoreConfig, ModelId, QueryCacheConfig, QueryId,
    QueryRequest,
};
use deepstore::nn::{zoo, ModelGraph, Tensor};
use proptest::prelude::*;
use std::io::Write as _;
use std::net::TcpStream;
use std::time::Duration;

fn sample_commands() -> Vec<Command> {
    let t = Tensor::random(vec![8], 1.0, 7);
    vec![
        Command::WriteDb {
            features: vec![t.clone(), t.clone()],
        },
        Command::AppendDb {
            db: DbId(3),
            features: vec![t.clone()],
        },
        Command::ReadDb {
            db: DbId(3),
            start: 1,
            num: 2,
        },
        Command::LoadModel {
            graph: ModelGraph::from_model(&zoo::textqa().seeded(1))
                .to_bytes()
                .expect("graph serializes"),
        },
        Command::SetQc {
            config: QueryCacheConfig {
                capacity: 4,
                threshold: 0.1,
                qcn_accuracy: 1.0,
            },
        },
        Command::Query {
            qfv: t.clone(),
            k: 3,
            model: ModelId(1),
            db: DbId(1),
            level: AcceleratorLevel::Channel,
            exact: false,
            request_id: 42,
            sched_lag_ns: 1_500,
        },
        Command::GetResults { query: QueryId(12) },
        Command::QueryBatch {
            requests: vec![QueryRequest::new(t, ModelId(1), DbId(1)).k(2)],
            request_id: 0,
            sched_lag_ns: 0,
        },
        Command::Stats,
        Command::Metrics,
        Command::Dump,
        Command::Hello {
            client: "tenant-a".into(),
            version: PROTOCOL_VERSION,
        },
    ]
}

fn sample_responses() -> Vec<Response> {
    vec![
        Response::DbCreated(DbId(1)),
        Response::Appended,
        Response::Features(vec![Tensor::random(vec![4], 1.0, 3)]),
        Response::ModelLoaded(ModelId(2)),
        Response::QcConfigured,
        Response::QuerySubmitted {
            id: QueryId(9),
            request_id: 42,
        },
        Response::BatchSubmitted {
            ids: vec![QueryId(1), QueryId(2)],
            request_id: 7,
        },
        Response::Metrics {
            text: "# TYPE deepstore_serve_frames counter\ndeepstore_serve_frames 3\n".into(),
        },
        Response::Dump {
            json: "{\"reason\":\"explicit\",\"entries\":[]}".into(),
        },
        Response::HelloAck {
            client: "tenant-a".into(),
            version: PROTOCOL_VERSION,
        },
        Response::Overloaded { queue_depth: 64 },
        Response::QuotaExceeded {
            client: "tenant-a".into(),
        },
        Response::Error(WireError::UnknownModel(7)),
        Response::Error(WireError::UnknownQuery(8)),
        Response::Error(WireError::LevelUnsupported {
            model: "reid".into(),
            level: AcceleratorLevel::Chip,
        }),
        Response::Error(WireError::InsufficientCoverage {
            required: 0.9,
            achieved: 0.25,
        }),
        Response::Error(WireError::Overloaded { queue_depth: 2 }),
        Response::Error(WireError::QuotaExceeded { client: "t".into() }),
        Response::Error(WireError::VersionMismatch {
            expected: 1,
            found: 2,
        }),
        Response::Error(WireError::Device("ecc storm".into())),
        Response::Error(WireError::Malformed("bad magic".into())),
    ]
}

#[test]
fn every_command_frame_roundtrips() {
    for cmd in sample_commands() {
        let frame = encode_command(&cmd);
        assert_eq!(&frame[..4], &MAGIC);
        assert_eq!(frame[4], VERSION);
        assert_eq!(decode_command(&frame).expect("decodes"), cmd);
    }
}

#[test]
fn every_response_frame_roundtrips() {
    for resp in sample_responses() {
        let frame = encode_response(&resp);
        assert_eq!(decode_response(&frame).expect("decodes"), resp);
    }
    // Results and Stats frames round-trip through a real device
    // session (their payloads are too stateful to hand-construct).
    let model = zoo::textqa().seeded(2);
    let mut device = Device::new(DeepStoreConfig::small());
    let mut host = HostClient::new(&mut device);
    let features: Vec<Tensor> = (0..16).map(|i| model.random_feature(i)).collect();
    let db = host.write_db(&features).unwrap();
    let mid = host.load_model(&ModelGraph::from_model(&model)).unwrap();
    let qid = host
        .query(
            &model.random_feature(99),
            3,
            mid,
            db,
            AcceleratorLevel::Ssd,
            false,
        )
        .unwrap();
    assert_eq!(host.get_results(qid).unwrap().top_k.len(), 3);
    assert!(host.stats().is_ok());
}

#[test]
fn truncation_at_every_split_point_is_typed() {
    for cmd in sample_commands() {
        let frame = encode_command(&cmd);
        for cut in 0..frame.len() {
            match decode_command(&frame[..cut]) {
                Err(
                    ProtoError::Truncated
                    | ProtoError::BadMagic
                    | ProtoError::BadPayload(_)
                    | ProtoError::FrameTooLarge { .. },
                ) => {}
                other => panic!("cut at {cut}: expected typed error, got {other:?}"),
            }
        }
    }
    for resp in sample_responses() {
        let frame = encode_response(&resp);
        for cut in 0..frame.len() {
            assert!(
                decode_response(&frame[..cut]).is_err(),
                "cut at {cut} decoded"
            );
        }
    }
}

#[test]
fn header_corruption_is_typed() {
    let frame = encode_command(&Command::Stats);
    // Bad magic.
    let mut bad = frame.clone();
    bad[0] = b'X';
    assert_eq!(decode_command(&bad).unwrap_err(), ProtoError::BadMagic);
    // Bad version.
    let mut bad = frame.clone();
    bad[4] = 9;
    assert_eq!(decode_command(&bad).unwrap_err(), ProtoError::BadVersion(9));
    // Unknown opcodes: zero, past the last command, response-range.
    for opcode in [0x00u8, 0x0D, 0x42, 0xFF] {
        let mut bad = frame.clone();
        bad[5] = opcode;
        assert_eq!(
            decode_command(&bad).unwrap_err(),
            ProtoError::UnknownOpcode(opcode)
        );
    }
    // Length prefix longer than the body.
    let mut bad = frame.clone();
    bad[6..10].copy_from_slice(&1_000u32.to_le_bytes());
    assert_eq!(decode_command(&bad).unwrap_err(), ProtoError::Truncated);
    // Oversized length prefix is rejected before any allocation.
    let mut bad = frame;
    bad[6..10].copy_from_slice(&u32::MAX.to_le_bytes());
    match decode_command(&bad).unwrap_err() {
        ProtoError::FrameTooLarge { len, max } => {
            assert_eq!(len, u64::from(u32::MAX));
            assert_eq!(max, MAX_FRAME_LEN as u64);
        }
        other => panic!("expected FrameTooLarge, got {other:?}"),
    }
}

fn sample_rebalance_reports() -> Vec<RebalanceReport> {
    vec![
        RebalanceReport::default(),
        RebalanceReport {
            partitions: 4,
            under_replicated: 2,
            re_replicated: 2,
            dropped_replicas: 2,
            moved_bytes: 65_536,
            pages_remapped: 3,
            pages_lost: 0,
            blocks_retired: 1,
            unrecoverable: 0,
            min_replication: 2,
            max_replication: 2,
        },
        RebalanceReport {
            partitions: 3,
            under_replicated: 1,
            re_replicated: 0,
            dropped_replicas: 2,
            moved_bytes: 0,
            pages_remapped: 0,
            pages_lost: 7,
            blocks_retired: 0,
            unrecoverable: 1,
            min_replication: 0,
            max_replication: 2,
        },
    ]
}

/// The rebalance stats frame (opcode 0x0D) round-trips exactly and is
/// rejected — typed, never panicking — under truncation at every
/// prefix length, header corruption, opcode confusion with the
/// command/response planes, and payload corruption.
#[test]
fn rebalance_report_frame_is_robust() {
    for report in sample_rebalance_reports() {
        let frame = encode_rebalance_report(&report);
        assert_eq!(&frame[..4], &MAGIC);
        assert_eq!(frame[4], VERSION);
        assert_eq!(frame[5], REBALANCE_REPORT_OPCODE);
        assert_eq!(decode_rebalance_report(&frame).expect("decodes"), report);

        // Truncation at every split point is a typed error.
        for cut in 0..frame.len() {
            match decode_rebalance_report(&frame[..cut]) {
                Err(ProtoError::Truncated | ProtoError::BadMagic | ProtoError::BadPayload(_)) => {}
                other => panic!("cut at {cut}: expected typed error, got {other:?}"),
            }
        }

        // Header corruption: magic, version, length prefix.
        let mut bad = frame.clone();
        bad[0] = b'!';
        assert_eq!(
            decode_rebalance_report(&bad).unwrap_err(),
            ProtoError::BadMagic
        );
        let mut bad = frame.clone();
        bad[4] = 9;
        assert_eq!(
            decode_rebalance_report(&bad).unwrap_err(),
            ProtoError::BadVersion(9)
        );
        let mut bad = frame.clone();
        bad[6..10].copy_from_slice(&1_000_000u32.to_le_bytes());
        assert_eq!(
            decode_rebalance_report(&bad).unwrap_err(),
            ProtoError::Truncated
        );
        let mut bad = frame.clone();
        bad[6..10].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            decode_rebalance_report(&bad).unwrap_err(),
            ProtoError::FrameTooLarge { .. }
        ));

        // Opcode confusion: every command opcode and the response
        // opcode are rejected as UnknownOpcode — a report decoder never
        // quietly accepts another plane's frame, and vice versa.
        for other in [0x01u8, 0x09, 0x80, 0x00, 0xFF] {
            let mut bad = frame.clone();
            bad[5] = other;
            assert_eq!(
                decode_rebalance_report(&bad).unwrap_err(),
                ProtoError::UnknownOpcode(other)
            );
        }
        assert!(matches!(
            decode_command(&frame).unwrap_err(),
            ProtoError::UnknownOpcode(REBALANCE_REPORT_OPCODE)
        ));
        assert!(decode_response(&frame).is_err());

        // Payload corruption: flip each payload byte in turn; the
        // decoder either still parses (JSON-tolerated bytes) or fails
        // with BadPayload — never panics, never misframes.
        for i in HEADER_LEN..frame.len() {
            let mut bad = frame.clone();
            bad[i] = bad[i].wrapping_add(1);
            match decode_rebalance_report(&bad) {
                Ok(_) | Err(ProtoError::BadPayload(_)) => {}
                other => panic!("payload byte {i}: unexpected {other:?}"),
            }
        }
    }
}

#[test]
fn stream_reader_handles_eof_and_oversize() {
    use std::io::Cursor;
    // Clean EOF at a frame boundary: end of stream, not an error.
    assert_eq!(read_frame(&mut Cursor::new(Vec::new())).unwrap(), None);
    // Mid-frame disconnect at every split point: typed ConnectionClosed.
    let frame = encode_command(&Command::Hello {
        client: "eof".into(),
        version: PROTOCOL_VERSION,
    });
    for cut in 1..frame.len() {
        assert_eq!(
            read_frame(&mut Cursor::new(frame[..cut].to_vec())).unwrap_err(),
            ProtoError::ConnectionClosed,
            "cut at {cut}"
        );
    }
    // An oversized length prefix never allocates the claimed buffer.
    let mut huge = frame.clone();
    huge[6..10].copy_from_slice(&u32::MAX.to_le_bytes());
    assert!(matches!(
        read_frame(&mut Cursor::new(huge)).unwrap_err(),
        ProtoError::FrameTooLarge { .. }
    ));
    // write_frame framing round-trips.
    let mut buf = Vec::new();
    write_frame(&mut buf, &frame).unwrap();
    assert_eq!(read_frame(&mut Cursor::new(buf)).unwrap(), Some(frame));
}

/// Garbage over the in-process transport: the server answers each bad
/// frame with a typed `Malformed` error and the connection (and the
/// server) keep working.
#[test]
fn served_connection_survives_garbage_frames() {
    let mut store = DeepStore::in_memory(DeepStoreConfig::small());
    store.disable_qc();
    let (transport, connector) = channel_transport();
    let handle = serve(transport, store, ServeConfig::default());

    let conn = connector.connect().unwrap();
    // Whole-frame garbage (the channel transport is message-oriented,
    // so framing survives; decoding must not).
    for garbage in [
        b"not a frame at all".to_vec(),
        vec![],
        vec![0xFF; 64],
        {
            let mut f = encode_command(&Command::Stats);
            f[5] = 0x77; // unknown opcode
            f
        },
        {
            let mut f = encode_command(&Command::Stats);
            let len = f.len();
            f.truncate(len - 1); // truncated payload... of a 0-len payload frame
            f
        },
    ] {
        conn.send_frame(&garbage).unwrap();
        match decode_response(&conn.recv_frame().unwrap()).unwrap() {
            Response::Error(WireError::Malformed(_)) => {}
            other => panic!("expected Malformed, got {other:?}"),
        }
    }
    // The same connection still completes a real session.
    let mut host = HostClient::over(conn);
    host.hello("after-garbage").unwrap();
    assert!(host.stats().is_ok());

    let (_store, stats) = handle.shutdown();
    assert!(stats.malformed_frames >= 4, "stats = {stats:?}");
}

/// TCP-level abuse: partial frames, oversized prefixes and mid-frame
/// disconnects must not wedge the accept loop — a well-behaved client
/// connecting afterwards completes a full session.
#[test]
fn tcp_server_survives_partial_frames_and_disconnects() {
    let model = zoo::textqa().seeded(5);
    let mut store = DeepStore::in_memory(DeepStoreConfig::small());
    store.disable_qc();
    let transport = TcpTransport::bind("127.0.0.1:0").unwrap();
    let handle = serve(transport, store, ServeConfig::default());
    let endpoint = handle.endpoint().to_string();

    // 1. Connect and vanish without sending anything.
    drop(TcpStream::connect(&endpoint).unwrap());
    // 2. Send half a header, then disconnect mid-frame.
    let mut s = TcpStream::connect(&endpoint).unwrap();
    s.write_all(&MAGIC[..2]).unwrap();
    drop(s);
    // 3. Send a full header claiming a huge payload, then disconnect.
    let mut s = TcpStream::connect(&endpoint).unwrap();
    let mut frame = encode_command(&Command::Stats);
    frame[6..10].copy_from_slice(&u32::MAX.to_le_bytes());
    s.write_all(&frame[..HEADER_LEN]).unwrap();
    // The server answers Malformed (FrameTooLarge) and hangs up.
    let reply = read_frame(&mut s).unwrap();
    match reply {
        Some(bytes) => match decode_response(&bytes).unwrap() {
            Response::Error(WireError::Malformed(msg)) => {
                assert!(msg.contains("exceeds"), "unexpected message: {msg}")
            }
            other => panic!("expected Malformed, got {other:?}"),
        },
        None => panic!("server closed without a typed error frame"),
    }
    drop(s);
    // 4. A fresh, honest client still gets full service.
    let mut host = HostClient::over(TcpClient::connect(&endpoint).unwrap());
    host.hello("survivor").unwrap();
    let features: Vec<Tensor> = (0..16).map(|i| model.random_feature(i)).collect();
    let db = host.write_db(&features).unwrap();
    let mid = host.load_model(&ModelGraph::from_model(&model)).unwrap();
    let qid = host
        .query(
            &model.random_feature(50),
            2,
            mid,
            db,
            AcceleratorLevel::Ssd,
            false,
        )
        .unwrap();
    assert_eq!(host.get_results(qid).unwrap().top_k.len(), 2);
    drop(host);

    // Give the per-connection threads a beat to notice the dropped
    // sockets, then shut down (shutdown joins them all — a wedged
    // loop would hang here, failing the test by timeout).
    std::thread::sleep(Duration::from_millis(20));
    let (_store, stats) = handle.shutdown();
    assert_eq!(stats.connections, 4);
    assert!(stats.malformed_frames >= 1);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary bytes never panic the decoders; any accepted frame
    /// re-encodes to semantically identical bytes.
    #[test]
    fn decoders_are_total_on_arbitrary_bytes(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        // A typed decode error is fine; an accepted frame must re-encode
        // to something that decodes back to the same value.
        if let Ok(cmd) = decode_command(&bytes) {
            prop_assert_eq!(decode_command(&encode_command(&cmd)).unwrap(), cmd);
        }
        if let Ok(resp) = decode_response(&bytes) {
            prop_assert_eq!(decode_response(&encode_response(&resp)).unwrap(), resp);
        }
    }

    /// Corrupting any single byte of a valid frame either still decodes
    /// (payload bytes that JSON tolerates) or fails typed — never panics.
    #[test]
    fn single_byte_corruption_never_panics(idx in 0usize..64, delta in 1u8..=255) {
        let frame = encode_command(&Command::Query {
            qfv: Tensor::random(vec![6], 1.0, 9),
            k: 2,
            model: ModelId(1),
            db: DbId(1),
            level: AcceleratorLevel::Ssd,
            exact: false,
            request_id: 5,
            sched_lag_ns: 0,
        });
        let mut corrupted = frame.clone();
        let i = idx % frame.len();
        corrupted[i] = corrupted[i].wrapping_add(delta);
        let _ = decode_command(&corrupted); // must return, not panic
    }
}
