//! Integration tests: the full DeepStore API across crates.

use deepstore::core::{
    AcceleratorLevel, DeepStore, DeepStoreConfig, QueryCacheConfig, QueryRequest,
};
use deepstore::flash::SimDuration;
use deepstore::nn::{zoo, ModelGraph, Tensor};
use deepstore::workloads::gen::FeatureGen;
use deepstore::workloads::{QueryStream, TraceDistribution};

fn store_with(
    app: &str,
    n: u64,
    seed: u64,
) -> (
    DeepStore,
    deepstore::nn::Model,
    deepstore::core::DbId,
    deepstore::core::ModelId,
) {
    let model = zoo::by_name(app).unwrap().seeded_metric(seed);
    let mut store = DeepStore::in_memory(DeepStoreConfig::small());
    let features: Vec<Tensor> = (0..n).map(|i| model.random_feature(i)).collect();
    let db = store.write_db(&features).unwrap();
    let mid = store.load_model(&ModelGraph::from_model(&model)).unwrap();
    (store, model, db, mid)
}

#[test]
fn every_app_queries_end_to_end_at_every_supported_level() {
    for app in ["reid", "mir", "estp", "tir", "textqa"] {
        let (mut store, model, db, mid) = store_with(app, 16, 1);
        store.disable_qc();
        let q = model.random_feature(500);
        for level in AcceleratorLevel::ALL {
            let res = store.query(QueryRequest::new(q.clone(), mid, db).k(4).level(level));
            if app == "reid" && level == AcceleratorLevel::Chip {
                assert!(res.is_err(), "reid must not run at chip level");
                continue;
            }
            let r = store.results(res.unwrap()).unwrap();
            assert_eq!(r.top_k.len(), 4, "{app}/{level}");
            assert!(r.elapsed > SimDuration::ZERO);
        }
    }
}

#[test]
fn planted_duplicate_is_rank_one_with_metric_weights() {
    // TIR with metric weights: an exact duplicate must win the scan.
    let model = zoo::tir().seeded_metric(3);
    let mut store = DeepStore::in_memory(DeepStoreConfig::small());
    store.disable_qc();
    let mut features: Vec<Tensor> = (0..64).map(|i| model.random_feature(i)).collect();
    let query = model.random_feature(4096);
    features[29] = query.clone();
    let db = store.write_db(&features).unwrap();
    let mid = store.load_model(&ModelGraph::from_model(&model)).unwrap();
    let qid = store
        .query(QueryRequest::new(query.clone(), mid, db))
        .unwrap();
    let r = store.results(qid).unwrap();
    assert_eq!(r.top_k[0].feature_index, 29);
}

#[test]
fn clustered_gallery_retrieval_is_accurate() {
    // ReId-style identity retrieval: top-K should be dominated by the
    // probe's identity cluster.
    let model = zoo::reid().seeded_metric(11);
    let gen = FeatureGen::new(model.feature_len(), 8, 0.05, 4);
    let mut store = DeepStore::in_memory(DeepStoreConfig::small());
    store.disable_qc();
    let gallery: Vec<Tensor> = gen.features(32); // 4 sightings x 8 ids
    let db = store.write_db(&gallery).unwrap();
    let mid = store.load_model(&ModelGraph::from_model(&model)).unwrap();
    let probe = gen.feature(8 * 1000 + 5); // identity 5, unseen sighting
    let qid = store.query(QueryRequest::new(probe, mid, db).k(4)).unwrap();
    let r = store.results(qid).unwrap();
    let correct = r.top_k.iter().filter(|h| h.feature_index % 8 == 5).count();
    assert!(correct >= 3, "only {correct}/4 matches: {:?}", r.top_k);
}

#[test]
fn query_cache_accelerates_semantic_repeats() {
    let (mut store, model, db, mid) = store_with("tir", 64, 9);
    store.set_qc(QueryCacheConfig {
        capacity: 8,
        threshold: 0.10,
        qcn_accuracy: 1.0,
    });
    let mut stream = QueryStream::new(
        model.feature_len(),
        4, // tiny pool: heavy repetition
        2,
        TraceDistribution::Uniform,
        77,
    );
    let mut hits = 0;
    let mut misses = 0;
    for _ in 0..40 {
        let (_, q) = stream.next_query();
        let qid = store.query(QueryRequest::new(q, mid, db).k(3)).unwrap();
        let r = store.results(qid).unwrap();
        if r.cache_hit {
            hits += 1;
        } else {
            misses += 1;
        }
    }
    assert!(hits > misses, "hits {hits} vs misses {misses}");
    let stats = store.qc_stats().unwrap();
    assert_eq!(stats.lookups, 40);
    assert_eq!(stats.hits, hits);
}

#[test]
fn results_survive_serialization() {
    // QueryResult and friends are serde types; the host protocol is JSON.
    let (mut store, model, db, mid) = store_with("textqa", 24, 2);
    let q = model.random_feature(999);
    let qid = store
        .query(
            QueryRequest::new(q, mid, db)
                .k(3)
                .level(AcceleratorLevel::Ssd),
        )
        .unwrap();
    let r = store.results(qid).unwrap();
    let json = serde_json::to_string(&r).unwrap();
    let back: deepstore::core::QueryResult = serde_json::from_str(&json).unwrap();
    assert_eq!(back, r);
}

#[test]
fn model_graph_ships_between_hosts_and_devices() {
    let model = zoo::estp().seeded(13);
    let bytes = ModelGraph::from_model(&model).to_bytes().unwrap();
    // A second device loads the same graph and produces identical scores.
    let restored = ModelGraph::from_bytes(&bytes).unwrap().into_model();
    let q = model.random_feature(1);
    let d = model.random_feature(2);
    assert_eq!(
        model.similarity(&q, &d).unwrap(),
        restored.similarity(&q, &d).unwrap()
    );
}

#[test]
fn append_db_extends_search_space() {
    let (mut store, model, db, mid) = store_with("mir", 16, 6);
    store.disable_qc();
    let target = model.random_feature(777);
    store.append_db(db, std::slice::from_ref(&target)).unwrap();
    let qid = store
        .query(QueryRequest::new(target.clone(), mid, db))
        .unwrap();
    let r = store.results(qid).unwrap();
    // MIR is concat-merge (no metric guarantee), but the appended feature
    // must at least be scanned: the db reports 17 features and the top-1
    // exists.
    assert_eq!(r.top_k.len(), 1);
    let all = store.read_db(db, 0, 17).unwrap();
    assert_eq!(all.len(), 17);
    assert_eq!(all[16], target);
}
