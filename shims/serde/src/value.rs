//! The parsed-JSON value tree and a dependency-free JSON parser.

use crate::DeError;

/// A parsed JSON value.
///
/// Integers keep full 64-bit precision (`serde_json` has the same split
/// between `u64`/`i64`/`f64` internally); objects preserve key order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer literal.
    U64(u64),
    /// A negative integer literal.
    I64(i64),
    /// Any other number.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in source order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// A short name for error messages.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) | Value::I64(_) | Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Arr(_) => "array",
            Value::Obj(_) => "object",
        }
    }

    /// The object body, if this is an object.
    #[must_use]
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Appends `s` as a quoted, escaped JSON string.
pub fn write_escaped_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a complete JSON document.
///
/// # Errors
///
/// Returns a [`DeError`] for malformed input or trailing garbage; never
/// panics on arbitrary bytes.
pub fn parse_value(bytes: &[u8]) -> Result<Value, DeError> {
    let text = std::str::from_utf8(bytes).map_err(|e| DeError::new(format!("not UTF-8: {e}")))?;
    let mut p = Parser {
        chars: text.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.chars.len() {
        return Err(DeError::new("trailing characters after JSON value"));
    }
    Ok(v)
}

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    chars: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Result<u8, DeError> {
        let c = self
            .peek()
            .ok_or_else(|| DeError::new("unexpected end of input"))?;
        self.pos += 1;
        Ok(c)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), DeError> {
        let got = self.bump()?;
        if got == c {
            Ok(())
        } else {
            Err(DeError::new(format!(
                "expected `{}`, got `{}` at byte {}",
                c as char,
                got as char,
                self.pos - 1
            )))
        }
    }

    fn literal(&mut self, lit: &str) -> Result<(), DeError> {
        if self.chars[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(DeError::new(format!(
                "invalid literal at byte {}",
                self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Value, DeError> {
        if self.depth >= MAX_DEPTH {
            return Err(DeError::new("JSON nesting too deep"));
        }
        match self
            .peek()
            .ok_or_else(|| DeError::new("unexpected end of input"))?
        {
            b'n' => self.literal("null").map(|()| Value::Null),
            b't' => self.literal("true").map(|()| Value::Bool(true)),
            b'f' => self.literal("false").map(|()| Value::Bool(false)),
            b'"' => self.string().map(Value::Str),
            b'[' => {
                self.depth += 1;
                let v = self.array();
                self.depth -= 1;
                v
            }
            b'{' => {
                self.depth += 1;
                let v = self.object();
                self.depth -= 1;
                v
            }
            b'-' | b'0'..=b'9' => self.number(),
            c => Err(DeError::new(format!(
                "unexpected character `{}` at byte {}",
                c as char, self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, DeError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump()? {
                b',' => {}
                b']' => return Ok(Value::Arr(items)),
                c => {
                    return Err(DeError::new(format!(
                        "expected `,` or `]`, got `{}`",
                        c as char
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, DeError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.bump()? {
                b',' => {}
                b'}' => return Ok(Value::Obj(fields)),
                c => {
                    return Err(DeError::new(format!(
                        "expected `,` or `}}`, got `{}`",
                        c as char
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, DeError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' || c < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                let chunk = std::str::from_utf8(&self.chars[start..self.pos])
                    .map_err(|e| DeError::new(format!("bad UTF-8 in string: {e}")))?;
                out.push_str(chunk);
            }
            match self.bump()? {
                b'"' => return Ok(out),
                b'\\' => match self.bump()? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let cp = self.hex4()?;
                        let c = if (0xD800..0xDC00).contains(&cp) {
                            // High surrogate: require a trailing \uXXXX.
                            self.expect(b'\\')?;
                            self.expect(b'u')?;
                            let lo = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err(DeError::new("invalid low surrogate"));
                            }
                            let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                            char::from_u32(combined)
                                .ok_or_else(|| DeError::new("invalid surrogate pair"))?
                        } else {
                            char::from_u32(cp).ok_or_else(|| DeError::new("invalid \\u escape"))?
                        };
                        out.push(c);
                    }
                    c => return Err(DeError::new(format!("invalid escape `\\{}`", c as char))),
                },
                c => {
                    return Err(DeError::new(format!(
                        "unescaped control character {c:#04x} in string"
                    )))
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, DeError> {
        let mut cp = 0u32;
        for _ in 0..4 {
            let c = self.bump()?;
            let d = (c as char)
                .to_digit(16)
                .ok_or_else(|| DeError::new("invalid hex digit in \\u escape"))?;
            cp = cp * 16 + d;
        }
        Ok(cp)
    }

    fn number(&mut self) -> Result<Value, DeError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.chars[start..self.pos]).expect("number bytes are ASCII");
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| DeError::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_documents() {
        let v = parse_value(br#"{"a": [1, -2, 3.5], "b": "x\ny", "c": null, "d": true}"#).unwrap();
        let obj = v.as_object().unwrap();
        assert_eq!(obj[0].0, "a");
        assert_eq!(
            obj[0].1,
            Value::Arr(vec![Value::U64(1), Value::I64(-2), Value::F64(3.5)])
        );
        assert_eq!(obj[1].1, Value::Str("x\ny".into()));
        assert_eq!(obj[2].1, Value::Null);
        assert_eq!(obj[3].1, Value::Bool(true));
    }

    #[test]
    fn rejects_garbage_without_panicking() {
        for bad in [
            &b"not json"[..],
            b"{",
            b"[1,",
            b"\"unterminated",
            b"{\"a\" 1}",
            b"1 2",
            b"\xff\xfe",
            b"",
            b"nul",
            b"--3",
            b"[\"\\q\"]",
        ] {
            assert!(parse_value(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn deep_nesting_is_bounded() {
        let mut doc = Vec::new();
        doc.extend(std::iter::repeat_n(b'[', 100_000));
        assert!(parse_value(&doc).is_err());
    }

    #[test]
    fn unicode_escapes() {
        let v = parse_value(br#""\u00e9\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "\u{e9}\u{1F600}");
    }
}
