//! Offline shim for `serde`.
//!
//! The build environment has no crates.io access, so this crate provides
//! a minimal, JSON-backed serialization framework with the same *spelling*
//! as serde — `use serde::{Serialize, Deserialize}` and
//! `#[derive(Serialize, Deserialize)]` work unchanged — but a much
//! smaller contract:
//!
//! * [`Serialize`] writes a value directly as JSON text.
//! * [`Deserialize`] reads a value back from a parsed [`Value`] tree.
//! * The derive macros (re-exported from `serde_derive`) handle the
//!   shapes this workspace uses: structs with named fields, tuple
//!   structs, and enums with unit/newtype/tuple/struct variants, using
//!   serde's externally-tagged enum representation.
//!
//! The companion `serde_json` shim supplies `to_vec`/`to_string`/
//! `from_slice`/`from_str` on top of these traits.

mod value;

pub use serde_derive::{Deserialize, Serialize};
pub use value::{parse_value, write_escaped_str, Value};

/// Serialization error (the shim's serializer is infallible, but the
/// public API mirrors serde's fallible signatures).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SerError(pub String);

/// Deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    /// Creates an error with the given message.
    pub fn new(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Writes `self` as JSON into `out`.
pub trait Serialize {
    /// Appends the JSON encoding of `self` to `out`.
    fn write_json(&self, out: &mut String);
}

/// Reconstructs `Self` from a parsed JSON [`Value`].
pub trait Deserialize: Sized {
    /// Converts a JSON value into `Self`.
    ///
    /// # Errors
    ///
    /// Returns a [`DeError`] describing any shape or type mismatch.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Missing-field placeholder handed to field deserializers (lets
/// `Option<T>` fields tolerate absent keys, as real serde does).
pub const NULL: Value = Value::Null;

/// Looks up a field in an object body, yielding [`NULL`] when absent.
#[must_use]
pub fn field<'a>(obj: &'a [(String, Value)], name: &str) -> &'a Value {
    obj.iter()
        .find(|(k, _)| k == name)
        .map_or(&NULL, |(_, v)| v)
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn write_json(&self, out: &mut String) {
                out.push_str(&self.to_string());
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::new(format!("{n} out of range"))),
                    Value::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::new(format!("{n} out of range"))),
                    other => Err(DeError::new(format!(
                        "expected unsigned integer, got {}",
                        other.kind()
                    ))),
                }
            }
        }
    )*};
}
impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn write_json(&self, out: &mut String) {
                out.push_str(&self.to_string());
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::new(format!("{n} out of range"))),
                    Value::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::new(format!("{n} out of range"))),
                    other => Err(DeError::new(format!(
                        "expected integer, got {}",
                        other.kind()
                    ))),
                }
            }
        }
    )*};
}
impl_serde_int!(i8, i16, i32, i64, isize);

macro_rules! impl_serde_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn write_json(&self, out: &mut String) {
                if self.is_finite() {
                    // `{}` prints the shortest decimal that round-trips.
                    out.push_str(&self.to_string());
                } else {
                    // Real serde_json refuses non-finite floats; encode as
                    // null so serialization stays infallible.
                    out.push_str("null");
                }
            }
        }
        impl Deserialize for $t {
            #[allow(clippy::cast_possible_truncation, clippy::cast_precision_loss)]
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::F64(x) => Ok(*x as $t),
                    Value::U64(n) => Ok(*n as $t),
                    Value::I64(n) => Ok(*n as $t),
                    Value::Null => Ok(<$t>::NAN),
                    other => Err(DeError::new(format!(
                        "expected number, got {}",
                        other.kind()
                    ))),
                }
            }
        }
    )*};
}
impl_serde_float!(f32, f64);

impl Serialize for bool {
    fn write_json(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::new(format!("expected bool, got {}", other.kind()))),
        }
    }
}

impl Serialize for String {
    fn write_json(&self, out: &mut String) {
        write_escaped_str(self, out);
    }
}

impl Serialize for str {
    fn write_json(&self, out: &mut String) {
        write_escaped_str(self, out);
    }
}

impl Serialize for &str {
    fn write_json(&self, out: &mut String) {
        write_escaped_str(self, out);
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::new(format!(
                "expected string, got {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn write_json(&self, out: &mut String) {
        self.as_slice().write_json(out);
    }
}

impl<T: Serialize> Serialize for [T] {
    fn write_json(&self, out: &mut String) {
        out.push('[');
        for (i, item) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            item.write_json(out);
        }
        out.push(']');
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Arr(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::new(format!(
                "expected array, got {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn write_json(&self, out: &mut String) {
        match self {
            Some(x) => x.write_json(out),
            None => out.push_str("null"),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn write_json(&self, out: &mut String) {
        (**self).write_json(out);
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

macro_rules! impl_serde_tuple {
    ($(($($t:ident / $idx:tt),+; $len:literal))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn write_json(&self, out: &mut String) {
                out.push('[');
                $(
                    if $idx > 0 {
                        out.push(',');
                    }
                    self.$idx.write_json(out);
                )+
                out.push(']');
            }
        }

        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Arr(items) if items.len() == $len => {
                        Ok(($($t::from_value(&items[$idx])?,)+))
                    }
                    other => Err(DeError::new(format!(
                        "expected {}-element array, got {}",
                        $len,
                        other.kind()
                    ))),
                }
            }
        }
    )*};
}
impl_serde_tuple! {
    (A/0, B/1; 2)
    (A/0, B/1, C/2; 3)
    (A/0, B/1, C/2, D/3; 4)
}

impl<T: Serialize + Ord> Serialize for std::collections::HashSet<T> {
    fn write_json(&self, out: &mut String) {
        // Sorted for a canonical encoding (HashSet iteration order is
        // nondeterministic).
        let mut items: Vec<&T> = self.iter().collect();
        items.sort();
        out.push('[');
        for (i, item) in items.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            item.write_json(out);
        }
        out.push(']');
    }
}

impl<T: Deserialize + Eq + std::hash::Hash> Deserialize for std::collections::HashSet<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Arr(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::new(format!(
                "expected array, got {}",
                other.kind()
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ser<T: Serialize>(x: &T) -> String {
        let mut out = String::new();
        x.write_json(&mut out);
        out
    }

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(ser(&42u64), "42");
        assert_eq!(ser(&-3i32), "-3");
        assert_eq!(ser(&true), "true");
        assert_eq!(ser(&1.5f32), "1.5");
        assert_eq!(ser(&"hi\"\\".to_string()), "\"hi\\\"\\\\\"");
        assert_eq!(ser(&Some(1u8)), "1");
        assert_eq!(ser(&Option::<u8>::None), "null");
        assert_eq!(ser(&vec![1u8, 2, 3]), "[1,2,3]");
    }

    #[test]
    fn f32_shortest_repr_roundtrips() {
        for bits in [0x3F80_0001u32, 0x0000_0001, 0x7F7F_FFFF, 0x3EAA_AAAB] {
            let x = f32::from_bits(bits);
            let text = ser(&x);
            let v = parse_value(text.as_bytes()).unwrap();
            let back = f32::from_value(&v).unwrap();
            assert_eq!(back.to_bits(), bits, "{text}");
        }
    }

    #[test]
    fn u64_full_range_roundtrips() {
        for n in [0u64, u64::MAX, 1 << 53, (1 << 53) + 1] {
            let v = parse_value(ser(&n).as_bytes()).unwrap();
            assert_eq!(u64::from_value(&v).unwrap(), n);
        }
    }
}
