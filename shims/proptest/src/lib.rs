//! Offline shim for `proptest`.
//!
//! The build environment has no crates.io access, so this crate
//! re-implements the slice of proptest this workspace uses with the same
//! spelling: the `proptest!` macro (with optional
//! `#![proptest_config(...)]`), `prop_assert!`/`prop_assert_eq!`,
//! numeric-range and tuple strategies, `prop_map`,
//! `proptest::collection::vec`, and `any::<T>()`.
//!
//! Differences from the real crate:
//!
//! * no shrinking — a failing case reports its inputs via the panic
//!   message of the failed assertion;
//! * cases are seeded deterministically from the test name and case
//!   index, so runs are reproducible without a persistence file;
//! * the default case count is 64 (the real default is 256) to keep the
//!   suite fast on small CI hosts.

/// Runtime configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic SplitMix64 generator driving case generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Builds the generator for one test case.
#[must_use]
pub fn test_rng(seed: u64) -> TestRng {
    TestRng { state: seed }
}

/// Derives a per-case seed from the property name and case index
/// (FNV-1a over the name, mixed with the index).
#[must_use]
pub fn seed_for(name: &str, case: u32) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// A source of random values of one type.
pub trait Strategy {
    /// The value type this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128) - (self.start as u128);
                let raw = (rng.next_u64() as u128) % span;
                #[allow(clippy::cast_possible_truncation)]
                let offset = raw as $t;
                self.start + offset
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u128) - (lo as u128) + 1;
                let raw = (rng.next_u64() as u128) % span;
                #[allow(clippy::cast_possible_truncation)]
                let offset = raw as $t;
                lo + offset
            }
        }
    )*};
}
impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            #[allow(clippy::cast_possible_truncation)]
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let frac = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                let val = f64::from(self.start)
                    + frac * (f64::from(self.end) - f64::from(self.start));
                val as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            #[allow(clippy::cast_possible_truncation)]
            fn generate(&self, rng: &mut TestRng) -> $t {
                let frac = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
                let val = f64::from(*self.start())
                    + frac * (f64::from(*self.end()) - f64::from(*self.start()));
                val as $t
            }
        }
    )*};
}
impl_float_range_strategy!(f32);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let frac = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + frac * (self.end - self.start)
    }
}

impl Strategy for std::ops::RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        let frac = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
        self.start() + frac * (self.end() - self.start())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident / $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A/0)
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
    (A/0, B/1, C/2, D/3, E/4, F/5)
    (A/0, B/1, C/2, D/3, E/4, F/5, G/6)
    (A/0, B/1, C/2, D/3, E/4, F/5, G/6, H/7)
}

/// Types with a canonical "any value" strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Produces one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, i8, i16, i32, i64, usize, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T` (`any::<u8>()` etc.).
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

pub mod collection {
    //! Collection strategies (`proptest::collection::vec`).

    use super::{Strategy, TestRng};

    /// Length bounds for [`vec()`]; converts from `usize` and ranges.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_exclusive: *r.end() + 1,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from a [`SizeRange`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            assert!(self.size.lo < self.size.hi_exclusive, "empty size range");
            let span = (self.size.hi_exclusive - self.size.lo) as u64;
            #[allow(clippy::cast_possible_truncation)]
            let len = self.size.lo + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A strategy producing vectors of `element` values.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude::*`.

    /// The real prelude exposes the crate under `prop` as well
    /// (`prop::collection::vec`).
    pub use crate as prop;
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig,
        Strategy,
    };
}

/// Asserts a condition inside a property; failure reports the case seed
/// via the panic message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*);
    };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*);
    };
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (@run ($config:expr) $(
        $(#[$attr:meta])*
        fn $name:ident($($arg:pat_param in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$attr])*
        fn $name() {
            let __config: $crate::ProptestConfig = $config;
            for __case in 0..__config.cases {
                let mut __rng = $crate::test_rng($crate::seed_for(stringify!($name), __case));
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)*
                $body
            }
        }
    )*};
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::test_rng(7);
        for _ in 0..1000 {
            let x = (3u64..17).generate(&mut rng);
            assert!((3..17).contains(&x));
            let y = (0.0f32..1.0).generate(&mut rng);
            assert!((0.0..1.0).contains(&y));
            let z = (5usize..=5).generate(&mut rng);
            assert_eq!(z, 5);
        }
    }

    #[test]
    fn seeds_are_deterministic() {
        let a = crate::seed_for("prop_x", 3);
        let b = crate::seed_for("prop_x", 3);
        assert_eq!(a, b);
        assert_ne!(a, crate::seed_for("prop_x", 4));
        assert_ne!(a, crate::seed_for("prop_y", 3));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn vec_lengths_respect_bounds(xs in collection::vec(any::<u8>(), 2..9)) {
            prop_assert!((2..9).contains(&xs.len()));
        }

        #[test]
        fn mapped_tuples_work(v in (1usize..4, 10u64..20).prop_map(|(a, b)| b * a as u64)) {
            prop_assert!((10..60).contains(&v));
        }
    }
}
