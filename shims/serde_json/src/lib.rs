//! Offline shim for `serde_json`.
//!
//! Provides the four entry points this workspace uses — [`to_vec`],
//! [`to_string`], [`from_slice`], [`from_str`] — on top of the shim
//! `serde` traits. Serialization is infallible (the `Result` return
//! mirrors the real crate's signatures); deserialization parses a full
//! [`serde::Value`] tree and converts it.

use serde::{Deserialize, Serialize};

/// Error type mirroring `serde_json::Error` for the shim's API surface.
#[derive(Debug)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.0)
    }
}

/// Serializes `value` as a JSON string.
///
/// # Errors
///
/// Never fails in the shim; the `Result` mirrors `serde_json`.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.write_json(&mut out);
    Ok(out)
}

/// Serializes `value` as JSON bytes.
///
/// # Errors
///
/// Never fails in the shim; the `Result` mirrors `serde_json`.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Deserializes a value from JSON bytes.
///
/// # Errors
///
/// Returns [`Error`] for malformed JSON or shape mismatches; never
/// panics on arbitrary input.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let value = serde::parse_value(bytes)?;
    T::from_value(&value).map_err(Error::from)
}

/// Deserializes a value from a JSON string.
///
/// # Errors
///
/// Returns [`Error`] for malformed JSON or shape mismatches.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    from_slice(text.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_vectors() {
        let xs = vec![1u32, 2, 3];
        let bytes = to_vec(&xs).unwrap();
        assert_eq!(bytes, b"[1,2,3]");
        let back: Vec<u32> = from_slice(&bytes).unwrap();
        assert_eq!(back, xs);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_slice::<Vec<u32>>(b"{{{").is_err());
        assert!(from_str::<bool>("42").is_err());
    }
}
