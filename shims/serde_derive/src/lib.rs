//! Offline shim for `serde_derive`.
//!
//! Dependency-free (`syn`/`quote`-free) derive macros for the shim
//! `serde` traits. The macros hand-parse the item's token stream —
//! enough for the shapes this workspace uses:
//!
//! * structs with named fields,
//! * tuple structs (a single field serializes as the bare value, like
//!   serde's newtype structs; more fields serialize as an array),
//! * enums with unit, newtype, tuple and struct variants in serde's
//!   externally-tagged representation.
//!
//! Generics are not supported (no derived type in the workspace needs
//! them); attempting to derive on a generic item panics with a clear
//! message at compile time.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The parsed shape of the item being derived.
enum Item {
    /// `struct Name { fields }`
    Struct { name: String, fields: Vec<String> },
    /// `struct Name(T, ...);` with the field count.
    TupleStruct { name: String, arity: usize },
    /// `enum Name { variants }`
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

/// Derives the shim `serde::Serialize` trait.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, fields } => serialize_struct(name, fields),
        Item::TupleStruct { name, arity } => serialize_tuple_struct(name, *arity),
        Item::Enum { name, variants } => serialize_enum(name, variants),
    };
    code.parse().expect("generated Serialize impl parses")
}

/// Derives the shim `serde::Deserialize` trait.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, fields } => deserialize_struct(name, fields),
        Item::TupleStruct { name, arity } => deserialize_tuple_struct(name, *arity),
        Item::Enum { name, variants } => deserialize_enum(name, variants),
    };
    code.parse().expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------- parsing

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);
    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde shim derive: expected `struct` or `enum`, got `{other}`"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde shim derive: expected item name, got `{other}`"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde shim derive: generic type `{name}` is not supported");
    }
    match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::Struct {
                name,
                fields: parse_named_fields(g.stream()),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Item::TupleStruct {
                    name,
                    arity: count_tuple_fields(g.stream()),
                }
            }
            _ => panic!("serde shim derive: unit struct `{name}` is not supported"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::Enum {
                name,
                variants: parse_variants(g.stream()),
            },
            _ => panic!("serde shim derive: malformed enum `{name}`"),
        },
        other => panic!("serde shim derive: cannot derive for `{other}` items"),
    }
}

/// Advances past `#[...]` attributes (including doc comments) and
/// `pub`/`pub(...)` visibility.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1; // '#'
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
                {
                    *i += 1;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

/// Field names of a `{ name: Type, ... }` body.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde shim derive: expected field name, got `{other}`"),
        };
        fields.push(name);
        i += 1;
        // Skip `: Type` up to the next top-level comma. Commas inside
        // `<...>` (e.g. `HashMap<K, V>`) are not separators; commas inside
        // parens/brackets sit in their own token groups already.
        let mut angle_depth = 0usize;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => {
                    angle_depth = angle_depth.saturating_sub(1);
                }
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    fields
}

/// Number of fields in a `(T, U, ...)` body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle_depth = 0usize;
    let mut saw_token_since_comma = false;
    for t in &tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle_depth = angle_depth.saturating_sub(1);
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                if saw_token_since_comma {
                    count += 1;
                }
                saw_token_since_comma = false;
                continue;
            }
            _ => {}
        }
        saw_token_since_comma = true;
    }
    if !saw_token_since_comma {
        count -= 1; // trailing comma
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde shim derive: expected variant name, got `{other}`"),
        };
        i += 1;
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantShape::Struct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantShape::Tuple(count_tuple_fields(g.stream()))
            }
            _ => VariantShape::Unit,
        };
        variants.push(Variant { name, shape });
        // Skip any discriminant (`= expr`) and the separating comma.
        while i < tokens.len() {
            if matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ',') {
                i += 1;
                break;
            }
            i += 1;
        }
    }
    variants
}

// ---------------------------------------------------------------- codegen

fn serialize_struct(name: &str, fields: &[String]) -> String {
    let mut body = String::from("out.push('{');\n");
    for (i, f) in fields.iter().enumerate() {
        if i > 0 {
            body.push_str("out.push(',');\n");
        }
        body.push_str(&format!(
            "out.push_str(\"\\\"{f}\\\":\");\n::serde::Serialize::write_json(&self.{f}, out);\n"
        ));
    }
    body.push_str("out.push('}');");
    impl_serialize(name, &body)
}

fn serialize_tuple_struct(name: &str, arity: usize) -> String {
    let body = if arity == 1 {
        "::serde::Serialize::write_json(&self.0, out);".to_string()
    } else {
        let mut b = String::from("out.push('[');\n");
        for i in 0..arity {
            if i > 0 {
                b.push_str("out.push(',');\n");
            }
            b.push_str(&format!(
                "::serde::Serialize::write_json(&self.{i}, out);\n"
            ));
        }
        b.push_str("out.push(']');");
        b
    };
    impl_serialize(name, &body)
}

fn serialize_enum(name: &str, variants: &[Variant]) -> String {
    let mut arms = String::new();
    for v in variants {
        let vn = &v.name;
        match &v.shape {
            VariantShape::Unit => {
                arms.push_str(&format!(
                    "{name}::{vn} => out.push_str(\"\\\"{vn}\\\"\"),\n"
                ));
            }
            VariantShape::Tuple(1) => {
                arms.push_str(&format!(
                    "{name}::{vn}(__f0) => {{\n\
                     out.push_str(\"{{\\\"{vn}\\\":\");\n\
                     ::serde::Serialize::write_json(__f0, out);\n\
                     out.push('}}');\n}}\n"
                ));
            }
            VariantShape::Tuple(arity) => {
                let binders: Vec<String> = (0..*arity).map(|i| format!("__f{i}")).collect();
                let mut write = format!("out.push_str(\"{{\\\"{vn}\\\":[\");\n");
                for (i, b) in binders.iter().enumerate() {
                    if i > 0 {
                        write.push_str("out.push(',');\n");
                    }
                    write.push_str(&format!("::serde::Serialize::write_json({b}, out);\n"));
                }
                write.push_str("out.push_str(\"]}\");\n");
                arms.push_str(&format!(
                    "{name}::{vn}({}) => {{\n{write}}}\n",
                    binders.join(", ")
                ));
            }
            VariantShape::Struct(fields) => {
                let mut write = format!("out.push_str(\"{{\\\"{vn}\\\":{{\");\n");
                for (i, f) in fields.iter().enumerate() {
                    if i > 0 {
                        write.push_str("out.push(',');\n");
                    }
                    write.push_str(&format!(
                        "out.push_str(\"\\\"{f}\\\":\");\n\
                         ::serde::Serialize::write_json({f}, out);\n"
                    ));
                }
                write.push_str("out.push_str(\"}}\");\n");
                arms.push_str(&format!(
                    "{name}::{vn} {{ {} }} => {{\n{write}}}\n",
                    fields.join(", ")
                ));
            }
        }
    }
    impl_serialize(name, &format!("match self {{\n{arms}}}"))
}

fn impl_serialize(name: &str, body: &str) -> String {
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
         fn write_json(&self, out: &mut ::std::string::String) {{\n{body}\n}}\n}}\n"
    )
}

fn deserialize_struct(name: &str, fields: &[String]) -> String {
    let mut build = String::new();
    for f in fields {
        build.push_str(&format!(
            "{f}: ::serde::Deserialize::from_value(::serde::field(__obj, \"{f}\")).map_err(\
             |e| ::serde::DeError::new(format!(\"{name}.{f}: {{e}}\")))?,\n"
        ));
    }
    let body = format!(
        "let __obj = v.as_object().ok_or_else(|| ::serde::DeError::new(\
         format!(\"expected object for {name}, got {{}}\", v.kind())))?;\n\
         ::core::result::Result::Ok({name} {{\n{build}}})"
    );
    impl_deserialize(name, &body)
}

fn deserialize_tuple_struct(name: &str, arity: usize) -> String {
    let body = if arity == 1 {
        format!(
            "::core::result::Result::Ok({name}(::serde::Deserialize::from_value(v).map_err(\
             |e| ::serde::DeError::new(format!(\"{name}: {{e}}\")))?))"
        )
    } else {
        let mut build = String::new();
        for i in 0..arity {
            build.push_str(&format!(
                "::serde::Deserialize::from_value(&__items[{i}])?,\n"
            ));
        }
        format!(
            "match v {{\n\
             ::serde::Value::Arr(__items) if __items.len() == {arity} => \
             ::core::result::Result::Ok({name}(\n{build})),\n\
             other => ::core::result::Result::Err(::serde::DeError::new(\
             format!(\"expected {arity}-element array for {name}, got {{}}\", other.kind()))),\n\
             }}"
        )
    };
    impl_deserialize(name, &body)
}

fn deserialize_enum(name: &str, variants: &[Variant]) -> String {
    let mut unit_arms = String::new();
    let mut tagged_arms = String::new();
    for v in variants {
        let vn = &v.name;
        match &v.shape {
            VariantShape::Unit => {
                unit_arms.push_str(&format!(
                    "\"{vn}\" => ::core::result::Result::Ok({name}::{vn}),\n"
                ));
            }
            VariantShape::Tuple(1) => {
                tagged_arms.push_str(&format!(
                    "\"{vn}\" => ::core::result::Result::Ok({name}::{vn}(\
                     ::serde::Deserialize::from_value(__payload).map_err(\
                     |e| ::serde::DeError::new(format!(\"{name}::{vn}: {{e}}\")))?)),\n"
                ));
            }
            VariantShape::Tuple(arity) => {
                let mut build = String::new();
                for i in 0..*arity {
                    build.push_str(&format!(
                        "::serde::Deserialize::from_value(&__items[{i}])?,\n"
                    ));
                }
                tagged_arms.push_str(&format!(
                    "\"{vn}\" => match __payload {{\n\
                     ::serde::Value::Arr(__items) if __items.len() == {arity} => \
                     ::core::result::Result::Ok({name}::{vn}(\n{build})),\n\
                     other => ::core::result::Result::Err(::serde::DeError::new(\
                     format!(\"expected {arity}-element array for {name}::{vn}, got {{}}\", \
                     other.kind()))),\n}},\n"
                ));
            }
            VariantShape::Struct(fields) => {
                let mut build = String::new();
                for f in fields {
                    build.push_str(&format!(
                        "{f}: ::serde::Deserialize::from_value(::serde::field(__vobj, \"{f}\"))\
                         .map_err(|e| ::serde::DeError::new(\
                         format!(\"{name}::{vn}.{f}: {{e}}\")))?,\n"
                    ));
                }
                tagged_arms.push_str(&format!(
                    "\"{vn}\" => {{\n\
                     let __vobj = __payload.as_object().ok_or_else(|| ::serde::DeError::new(\
                     format!(\"expected object for {name}::{vn}, got {{}}\", __payload.kind())))?;\n\
                     ::core::result::Result::Ok({name}::{vn} {{\n{build}}})\n}},\n"
                ));
            }
        }
    }
    let body = format!(
        "match v {{\n\
         ::serde::Value::Str(__s) => match __s.as_str() {{\n\
         {unit_arms}\
         other => ::core::result::Result::Err(::serde::DeError::new(\
         format!(\"unknown unit variant `{{other}}` for {name}\"))),\n\
         }},\n\
         ::serde::Value::Obj(__fields) if __fields.len() == 1 => {{\n\
         let (__tag, __payload) = &__fields[0];\n\
         match __tag.as_str() {{\n\
         {tagged_arms}\
         other => ::core::result::Result::Err(::serde::DeError::new(\
         format!(\"unknown variant `{{other}}` for {name}\"))),\n\
         }}\n}},\n\
         other => ::core::result::Result::Err(::serde::DeError::new(\
         format!(\"expected string or single-key object for {name}, got {{}}\", other.kind()))),\n\
         }}"
    );
    impl_deserialize(name, &body)
}

fn impl_deserialize(name: &str, body: &str) -> String {
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
         fn from_value(v: &::serde::Value) -> ::core::result::Result<Self, ::serde::DeError> {{\n\
         {body}\n}}\n}}\n"
    )
}
