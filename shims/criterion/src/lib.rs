//! Offline shim for `criterion`.
//!
//! The build environment has no crates.io access, so this crate provides
//! the API slice the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `black_box`, `criterion_group!`, `criterion_main!` —
//! with a simple wall-clock harness instead of criterion's statistical
//! machinery. Each benchmark is warmed up briefly, then timed over a
//! fixed iteration budget; the mean time per iteration is printed as
//! plain text.
//!
//! `cargo bench` output is therefore indicative, not rigorous, but the
//! benches compile and run unchanged against the real crate when
//! network access is available.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Rough time budget per benchmark (split between warm-up and
/// measurement).
const MEASURE_BUDGET: Duration = Duration::from_millis(400);
const WARMUP_BUDGET: Duration = Duration::from_millis(100);

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group: {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
        }
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim's iteration budget is
    /// time-based, so the sample count is ignored.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function(&mut self, id: impl Into<String>, mut f: impl FnMut(&mut Bencher)) {
        run_one(&self.name, &id.into(), &mut f);
    }

    /// Runs one parameterized benchmark.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        run_one(&self.name, &id.0, &mut |b| f(b, input));
    }

    /// Ends the group (no-op in the shim).
    pub fn finish(self) {}
}

/// A benchmark identifier (`function_name/parameter`).
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id labelled `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{}/{parameter}", name.into()))
    }
}

/// Timer handle passed to benchmark closures.
pub struct Bencher {
    /// Measured mean nanoseconds per iteration, filled in by `iter`.
    mean_ns: f64,
}

impl Bencher {
    /// Times `routine`, first warming up and calibrating an iteration
    /// count that fits the measurement budget.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm-up and calibration: run until the warm-up budget is spent,
        // doubling the batch size, to estimate per-iteration cost.
        let mut batch = 1u64;
        let warm_start = Instant::now();
        let per_iter = loop {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let per = t.elapsed() / u32::try_from(batch).unwrap_or(u32::MAX);
            if warm_start.elapsed() >= WARMUP_BUDGET {
                break per;
            }
            batch = batch.saturating_mul(2);
        };

        // Measurement: as many iterations as fit the budget (at least 1).
        let iters = if per_iter.is_zero() {
            1_000_000
        } else {
            (MEASURE_BUDGET.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 10_000_000) as u64
        };
        let t = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        #[allow(clippy::cast_precision_loss)]
        let mean = t.elapsed().as_nanos() as f64 / iters as f64;
        self.mean_ns = mean;
    }
}

fn run_one(group: &str, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher { mean_ns: 0.0 };
    f(&mut bencher);
    let mean = bencher.mean_ns;
    let human = if mean >= 1e9 {
        format!("{:.3} s", mean / 1e9)
    } else if mean >= 1e6 {
        format!("{:.3} ms", mean / 1e6)
    } else if mean >= 1e3 {
        format!("{:.3} us", mean / 1e3)
    } else {
        format!("{mean:.1} ns")
    };
    println!("{group}/{id}: {human}/iter");
}

/// Declares a benchmark group runner, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_harness_runs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        let mut ran = false;
        group.bench_function("noop", |b| {
            b.iter(|| black_box(1 + 1));
            ran = true;
        });
        group.bench_with_input(BenchmarkId::new("with_input", 3), &3u32, |b, &x| {
            b.iter(|| black_box(x * 2));
        });
        group.finish();
        assert!(ran);
    }
}
