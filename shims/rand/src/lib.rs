//! Offline shim for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! provides the small slice of the `rand` 0.8 API that the DeepStore
//! workspace uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen`], [`Rng::gen_range`] and [`Rng::gen_bool`].
//!
//! The generator is a SplitMix64 (Steele et al., "Fast splittable
//! pseudorandom number generators"): tiny, statistically solid for
//! simulation workloads, and deterministic for a given seed. Streams are
//! *not* bit-compatible with the real `rand::rngs::StdRng` (ChaCha12);
//! everything in this workspace that depends on randomness only relies on
//! determinism and distribution shape, not on specific values.

use std::ops::{Range, RangeInclusive};

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from the full output of an RNG
/// (the shim's stand-in for the `Standard` distribution).
pub trait Standard: Sized {
    /// Produces a value from one 64-bit RNG draw.
    fn from_u64(raw: u64) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn from_u64(raw: u64) -> Self {
                raw as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn from_u64(raw: u64) -> Self {
        raw & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn from_u64(raw: u64) -> Self {
        (raw >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn from_u64(raw: u64) -> Self {
        (raw >> 40) as f32 / (1u64 << 24) as f32
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
///
/// Generic over the output type (like the real crate) so a bare float
/// literal range infers its type from the call site, e.g.
/// `let x: f32 = rng.gen_range(0.0..1.0)`.
pub trait SampleRange<T> {
    /// Draws a uniform value from the range.
    fn sample(&self, rng: &mut dyn RngCore) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(&self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(&self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_signed {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(&self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(&self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = hi.wrapping_sub(lo) as u64;
                if span == u64::MAX {
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo.wrapping_add((rng.next_u64() % (span + 1)) as $t)
            }
        }
    )*};
}
impl_sample_range_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(&self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u = <$t as Standard>::from_u64(rng.next_u64()); // [0, 1)
                self.start + (self.end - self.start) * u
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(&self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let u = <$t as Standard>::from_u64(rng.next_u64());
                lo + (hi - lo) * u
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// The raw 64-bit source every generator implements.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore + Sized {
    /// Samples a value from the standard distribution for its type.
    fn gen<T: Standard>(&mut self) -> T {
        T::from_u64(self.next_u64())
    }

    /// Samples uniformly from a range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        <f64 as Standard>::from_u64(self.next_u64()) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The shim's standard generator: SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(0.0f32..1.0);
            assert!((0.0..1.0).contains(&x));
            let y = rng.gen_range(10usize..20);
            assert!((10..20).contains(&y));
            let z = rng.gen_range(-2.0f32..=2.0);
            assert!((-2.0..=2.0).contains(&z));
            let w = rng.gen_range(f64::EPSILON..1.0);
            assert!((f64::EPSILON..1.0).contains(&w));
        }
    }

    #[test]
    fn floats_cover_the_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut lo = 1.0f64;
        let mut hi = 0.0f64;
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            lo = lo.min(u);
            hi = hi.max(u);
        }
        assert!(lo < 0.01 && hi > 0.99, "lo={lo} hi={hi}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits={hits}");
    }
}
