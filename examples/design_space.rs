//! Walks the §4.5 design-space exploration interactively.
//!
//! Step 1 (Figure 6): sweep PE counts with the best aspect ratio under
//! infinite bandwidth; watch FC saturate at 512 PEs and convolution at
//! 1024. Step 2: apply the power and area budgets of each SSD parallelism
//! level; watch the Table 3 configurations emerge.
//!
//! ```sh
//! cargo run --release --example design_space
//! ```

use deepstore::core::config::AcceleratorLevel;
use deepstore::core::dse::{estimate_area_mm2, estimate_power_w, evaluate, sram_variant};
use deepstore::nn::zoo;
use deepstore::systolic::dse::{largest_conv, largest_fc, pe_sweep};

fn main() {
    let models = zoo::all();
    let fc = largest_fc(&models).expect("fc layers exist");
    let conv = largest_conv(&models).expect("conv layers exist");

    println!("step 1: unconstrained PE sweep (speedup vs 128 PEs, best aspect)");
    println!("  PEs     FC       conv");
    let budgets = [128usize, 256, 512, 1024, 2048, 4096];
    let fc_sweep = pe_sweep(&fc, &budgets, 800e6);
    let conv_sweep = pe_sweep(&conv, &budgets, 800e6);
    for ((fp, fs), (_, cs)) in fc_sweep.iter().zip(conv_sweep.iter()) {
        println!("  {:6}  {fs:5.2}x  {cs:5.2}x", fp.pes);
    }
    println!("  -> FC saturates at 512 (out_features cap); conv at 1024 (3x3x64 reduction)\n");

    println!("step 2: power & area budgets per level");
    for level in AcceleratorLevel::ALL {
        let v = evaluate(level, &models);
        let arr = v.chosen.array;
        println!(
            "  {:7}: chose {:4} PEs ({}x{}) @ {:.0} MHz — {:.2} W of {:.2} W budget, {:.1} mm2 of {:.1} mm2; max feasible PEs = {}",
            level.to_string(),
            arr.pes(),
            arr.rows,
            arr.cols,
            arr.freq_hz / 1e6,
            estimate_power_w(&arr, sram_variant(level)),
            v.chosen.power_budget_w,
            estimate_area_mm2(&arr),
            v.chosen.area_mm2,
            v.max_feasible_pes,
        );
    }
    println!("\n(channel-level wins overall: it pairs the 1024-PE sweet spot with per-channel\n flash bandwidth — the paper's headline design point)");
}
