//! Music information retrieval (MIR): where should the accelerators go?
//!
//! Uses the MIR workload to walk the §4.5/§6.3 design space: compares the
//! three accelerator placements on the paper-scale 25 GB database, then
//! sweeps the drive's channel count to show which designs ride the
//! internal bandwidth (Figure 10a).
//!
//! ```sh
//! cargo run --release --example music_retrieval
//! ```

use deepstore::baseline::{GpuSsdSystem, ScanSpec, WimpyCores};
use deepstore::core::accel::scan;
use deepstore::core::{AcceleratorLevel, DeepStoreConfig};
use deepstore::nn::zoo;

fn main() {
    let model = zoo::mir();
    let db_bytes: u64 = 25 * (1 << 30);
    let spec = ScanSpec::from_model(&model, db_bytes);
    let cfg = DeepStoreConfig::paper_default();
    let workload = deepstore::core::ScanWorkload::from_model(&model, db_bytes, &cfg);

    let gpu = GpuSsdSystem::paper_default("mir").query(&spec);
    println!("MIR: scan {} music features (25 GiB)", spec.num_features);
    println!(
        "  GPU+SSD baseline: {:.2} s (I/O {:.2} s, memcpy {:.2} s, compute {:.2} s)",
        gpu.total_secs, gpu.ssd_read_secs, gpu.memcpy_secs, gpu.compute_secs
    );
    let wimpy = WimpyCores::arm_a57_octa().query_time(&spec);
    println!(
        "  wimpy in-SSD cores: {wimpy} ({:.3}x)",
        gpu.total_secs / wimpy.as_secs_f64()
    );
    for level in AcceleratorLevel::ALL {
        let t = scan(level, &workload, &cfg).expect("MIR runs everywhere");
        println!(
            "  {:7} level: {} ({:.2}x vs GPU; compute {}, flash {}, {} accelerators)",
            level.to_string(),
            t.elapsed,
            gpu.total_secs / t.elapsed.as_secs_f64(),
            t.compute,
            t.flash,
            t.accelerators
        );
    }

    println!("\nscaling the internal bandwidth (channel count):");
    println!("  channels  channel-level  chip-level  (speedup vs 32-channel GPU+SSD)");
    for channels in [4usize, 8, 16, 32, 64] {
        let mut c = DeepStoreConfig::paper_default();
        c.ssd.geometry.channels = channels;
        let w = deepstore::core::ScanWorkload::from_model(&model, db_bytes, &c);
        let ch = scan(AcceleratorLevel::Channel, &w, &c).expect("supported");
        let chip = scan(AcceleratorLevel::Chip, &w, &c).expect("supported");
        println!(
            "  {channels:8}  {:13.2}  {:10.2}",
            gpu.total_secs / ch.elapsed.as_secs_f64(),
            gpu.total_secs / chip.elapsed.as_secs_f64(),
        );
    }
    println!("(channel- and chip-level designs scale linearly; the host-attached\n baseline cannot see bandwidth beyond the PCIe link)");
}
