//! The host↔device wire protocol.
//!
//! The Table 2 APIs "internally use new NVMe commands to interact with
//! the query engine" (§4.7.2). This example runs a full session through
//! the framed command protocol: every call is serialized to bytes,
//! handled by the device endpoint, and the response parsed back —
//! exactly what a kernel driver would do with vendor-specific NVMe
//! commands.
//!
//! ```sh
//! cargo run --release --example wire_protocol
//! ```

use deepstore::core::proto::{encode_command, Command, Device, HostClient};
use deepstore::core::{AcceleratorLevel, DeepStoreConfig};
use deepstore::nn::{zoo, ModelGraph};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut device = Device::new(DeepStoreConfig::small());

    // Show what a frame looks like on the wire.
    let model = zoo::textqa().seeded_metric(3);
    let probe_cmd = Command::Query {
        qfv: model.random_feature(0),
        k: 3,
        model: deepstore::core::ModelId(1),
        db: deepstore::core::DbId(1),
        level: AcceleratorLevel::Channel,
        exact: false,
        request_id: 0,
        sched_lag_ns: 0,
    };
    let frame = encode_command(&probe_cmd);
    println!(
        "a `query` frame: {} bytes (header {:02x?} + JSON payload)",
        frame.len(),
        &frame[..10]
    );

    // Full session through the client.
    let mut host = HostClient::new(&mut device);
    let features: Vec<_> = (0..64).map(|i| model.random_feature(i)).collect();
    let db = host.write_db(&features)?;
    println!("writeDB     -> {db:?}");
    let mid = host.load_model(&ModelGraph::from_model(&model))?;
    println!("loadModel   -> {mid:?}");
    let qid = host.query(
        &model.random_feature(17),
        3,
        mid,
        db,
        AcceleratorLevel::Channel,
        false,
    )?;
    println!("query       -> {qid:?}");
    let results = host.get_results(qid)?;
    println!(
        "getResults  -> {} hits in simulated {} (best: feature {})",
        results.top_k.len(),
        results.elapsed,
        results.top_k[0].feature_index
    );
    // Feature 17's exact duplicate was the query, so it must win.
    assert_eq!(results.top_k[0].feature_index, 17);

    // Errors come back as frames too, never as device crashes.
    let err = host.read_db(deepstore::core::DbId(99), 0, 1).unwrap_err();
    println!("bad readDB  -> {err}");
    println!("device handled {} frames total", device.frames_handled());
    Ok(())
}
