//! Quickstart: stand up a simulated DeepStore SSD, load a similarity
//! model, store a feature database and run an intelligent query entirely
//! in-storage.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use deepstore::core::{DeepStore, DeepStoreConfig, QueryRequest};
use deepstore::nn::{zoo, ModelGraph};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A scaled-down drive (4 channels, ~32 MB) so the example runs in
    // milliseconds; `DeepStoreConfig::paper_default()` gives the full
    // 1 TB / 32-channel configuration used by the benchmarks.
    let mut store = DeepStore::in_memory(DeepStoreConfig::small());

    // The TIR application: text-based image retrieval. `seeded` stands in
    // for loading trained weights.
    let model = zoo::tir().seeded(42);
    println!(
        "model `{}`: {} feature bytes, {:.2} MFLOPs/comparison, {:.2} MB weights",
        model.name(),
        model.feature_bytes(),
        model.total_flops() as f64 / 1e6,
        model.weight_bytes() as f64 / (1024.0 * 1024.0),
    );

    // Store 256 feature vectors as a database (writeDB).
    let features: Vec<_> = (0..256).map(|i| model.random_feature(i)).collect();
    let db = store.write_db(&features)?;

    // Ship the model to the device (loadModel).
    let model_id = store.load_model(&ModelGraph::from_model(&model))?;

    // Run a top-5 query on the channel-level accelerators (the
    // builder's default level).
    let query = model.random_feature(10_000);
    let qid = store.query(QueryRequest::new(query.clone(), model_id, db).k(5))?;
    let result = store.results(qid)?;

    println!(
        "query served {} the cache in simulated {}:",
        if result.cache_hit { "from" } else { "without" },
        result.elapsed
    );
    for (rank, hit) in result.top_k.iter().enumerate() {
        println!(
            "  #{rank}: feature {} (score {:.4}, ObjectID 0x{:x})",
            hit.feature_index, hit.score, hit.object_id.0
        );
    }

    // The same query again hits the similarity-based query cache.
    let qid = store.query(QueryRequest::new(query, model_id, db).k(5))?;
    let again = store.results(qid)?;
    println!(
        "repeat query: cache_hit = {}, simulated {} ({}x faster)",
        again.cache_hit,
        again.elapsed,
        result.elapsed.as_nanos() / again.elapsed.as_nanos().max(1)
    );
    Ok(())
}
