//! Graceful degradation under flash read faults.
//!
//! DNN-based queries tolerate approximation — the very property the
//! query cache exploits (§4.6). This example injects uncorrectable-read
//! faults into the simulated flash and shows that scans skip unreadable
//! features instead of failing, with retrieval quality (recall@K against
//! the planted ground truth) degrading smoothly.
//!
//! ```sh
//! cargo run --release --example fault_tolerance
//! ```

use deepstore::core::engine::Engine;
use deepstore::core::DeepStoreConfig;
use deepstore::flash::fault::FaultPlan;
use deepstore::nn::metrics::recall_at_k;
use deepstore::nn::zoo;
use deepstore::workloads::gen::FeatureGen;

const IDENTITIES: usize = 10;
const SIGHTINGS: u64 = 4;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = zoo::reid().seeded_metric(13);
    let gen = FeatureGen::new(model.feature_len(), IDENTITIES, 0.05, 7);
    let gallery = gen.features(IDENTITIES as u64 * SIGHTINGS);

    println!("fault_rate  recall@4  skipped_features");
    for rate in [0.0, 0.02, 0.05, 0.10, 0.25] {
        let mut engine = Engine::new(DeepStoreConfig::small());
        let db = engine.write_db(&gallery)?;
        engine.seal_db(db)?;
        let geometry = engine.config().ssd.geometry;
        engine.inject_faults(FaultPlan::random(&geometry, rate, 99));

        let mut recall_sum = 0.0;
        for identity in 0..IDENTITIES {
            let probe = gen.feature(identity as u64 + 50_000);
            let top = engine.scan_top_k(db, &model, &probe, SIGHTINGS as usize)?;
            let ranking: Vec<u64> = top.iter().map(|h| h.feature_id).collect();
            let relevant: Vec<u64> = (0..SIGHTINGS)
                .map(|s| s * IDENTITIES as u64 + identity as u64)
                .collect();
            recall_sum += recall_at_k(&ranking, &relevant, SIGHTINGS as usize);
        }
        println!(
            "{:>9.0}%  {:>8.3}  {:>16}",
            rate * 100.0,
            recall_sum / IDENTITIES as f64,
            engine.unreadable_skipped()
        );
    }
    println!("\nscans never fail: unreadable features are skipped, trading a");
    println!("little recall for availability — the error tolerance the");
    println!("similarity-based query cache is built on.");
    Ok(())
}
