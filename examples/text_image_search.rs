//! Text-based image retrieval (TIR) with the similarity-based Query
//! Cache.
//!
//! Drives a stream of semantically related sentence queries ("a brown dog
//! is running in the sand" vs "a brown dog plays at the beach", §4.6)
//! through DeepStore twice — once with the cache disabled, once enabled —
//! and reports hit rates and mean simulated latency.
//!
//! ```sh
//! cargo run --release --example text_image_search
//! ```

use deepstore::core::{DeepStore, DeepStoreConfig, QueryCacheConfig, QueryRequest};
use deepstore::flash::SimDuration;
use deepstore::nn::{zoo, ModelGraph};
use deepstore::workloads::{QueryStream, TraceDistribution};

const QUERIES: usize = 60;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = zoo::tir().seeded_metric(21);
    let mut store = DeepStore::in_memory(DeepStoreConfig::small());
    let images: Vec<_> = (0..200).map(|i| model.random_feature(i)).collect();
    let db = store.write_db(&images)?;
    let model_id = store.load_model(&ModelGraph::from_model(&model))?;

    // A Zipfian query stream over 30 base sentences in 10 semantic
    // clusters: popular queries repeat, paraphrases are near-duplicates.
    let make_stream = || {
        QueryStream::new(
            model.feature_len(),
            30,
            10,
            TraceDistribution::Zipfian { alpha: 0.8 },
            2026,
        )
    };

    // Pass 1: no cache.
    store.disable_qc();
    let mut stream = make_stream();
    let mut total = SimDuration::ZERO;
    for _ in 0..QUERIES {
        let (_, q) = stream.next_query();
        let qid = store.query(QueryRequest::new(q, model_id, db).k(5))?;
        total += store.results(qid)?.elapsed;
    }
    let without = SimDuration::from_nanos(total.as_nanos() / QUERIES as u64);

    // Pass 2: 16-entry cache at a 12% error threshold.
    store.set_qc(QueryCacheConfig {
        capacity: 16,
        threshold: 0.12,
        qcn_accuracy: 1.0,
    });
    let mut stream = make_stream();
    let mut total = SimDuration::ZERO;
    let mut hits = 0;
    for _ in 0..QUERIES {
        let (_, q) = stream.next_query();
        let qid = store.query(QueryRequest::new(q, model_id, db).k(5))?;
        let r = store.results(qid)?;
        total += r.elapsed;
        hits += r.cache_hit as usize;
    }
    let with = SimDuration::from_nanos(total.as_nanos() / QUERIES as u64);

    println!("{QUERIES} queries, Zipf(0.8) over 30 base sentences:");
    println!("  without Query Cache: mean {without} per query");
    println!(
        "  with Query Cache   : mean {with} per query, {hits}/{QUERIES} hits ({:.0}% hit rate)",
        100.0 * hits as f64 / QUERIES as f64
    );
    println!(
        "  -> {:.2}x faster on this stream",
        without.as_nanos() as f64 / with.as_nanos() as f64
    );
    let stats = store.qc_stats().expect("cache enabled");
    println!(
        "  cache stats: {} lookups, {} hits, {} inserts, {} evictions",
        stats.lookups, stats.hits, stats.inserts, stats.evictions
    );
    Ok(())
}
