//! Person re-identification (ReId) scenario.
//!
//! Builds a gallery of person feature maps with planted identities (each
//! identity contributes several noisy sightings), then asks DeepStore to
//! find all sightings of a probe person — the §3 ReId workload. Also
//! prints the paper-scale timing comparison for the 25 GB gallery: ReId
//! is the one application whose SCN has convolutions, so the chip-level
//! accelerator cannot run it and the channel level is compute-bound.
//!
//! ```sh
//! cargo run --release --example person_reid
//! ```

use deepstore::baseline::GpuSsdSystem;
use deepstore::core::accel::{channel_level_scan, ssd_level_scan, ScanWorkload};
use deepstore::core::{DeepStore, DeepStoreConfig, QueryRequest};
use deepstore::nn::{zoo, ModelGraph, Tensor};
use deepstore::workloads::gen::FeatureGen;

const IDENTITIES: usize = 12;
const SIGHTINGS_PER_IDENTITY: u64 = 4;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = zoo::reid().seeded_metric(7);
    let mut store = DeepStore::in_memory(DeepStoreConfig::small());
    store.disable_qc();

    // Gallery: IDENTITIES clusters, SIGHTINGS_PER_IDENTITY noisy images
    // each. FeatureGen assigns cluster c to indices i with i % clusters.
    let gen = FeatureGen::new(model.feature_len(), IDENTITIES, 0.05, 99);
    let gallery: Vec<Tensor> = gen.features(IDENTITIES as u64 * SIGHTINGS_PER_IDENTITY);
    let db = store.write_db(&gallery)?;
    let model_id = store.load_model(&ModelGraph::from_model(&model))?;

    // Probe: a fresh sighting of identity 3.
    let probe_identity = 3usize;
    let probe = gen.feature(probe_identity as u64 + 10_000 * IDENTITIES as u64);
    // (feature index i belongs to identity i % IDENTITIES)
    let qid =
        store.query(QueryRequest::new(probe, model_id, db).k(SIGHTINGS_PER_IDENTITY as usize))?;
    let result = store.results(qid)?;

    println!("probe is identity {probe_identity}; top matches:");
    let mut correct = 0;
    for hit in &result.top_k {
        let identity = (hit.feature_index % IDENTITIES as u64) as usize;
        let mark = if identity == probe_identity {
            correct += 1;
            "MATCH"
        } else {
            "     "
        };
        println!(
            "  {mark} gallery image {} -> identity {identity} (score {:.4})",
            hit.feature_index, hit.score
        );
    }
    println!(
        "{correct}/{} retrieved sightings share the probe identity (simulated {})",
        SIGHTINGS_PER_IDENTITY, result.elapsed
    );

    // Paper-scale timing (25 GB gallery).
    let cfg = DeepStoreConfig::paper_default();
    let workload = ScanWorkload::from_model(&model, 25 * (1 << 30), &cfg);
    let spec = deepstore::baseline::ScanSpec::from_model(&model, 25 * (1 << 30));
    let gpu = GpuSsdSystem::paper_default("reid").query(&spec);
    let ssd = ssd_level_scan(&workload, &cfg);
    let channel = channel_level_scan(&workload, &cfg);
    println!("\n25 GB gallery scan:");
    println!("  GPU+SSD baseline : {:.2} s", gpu.total_secs);
    println!(
        "  SSD-level accel  : {} ({:.2}x)",
        ssd.elapsed,
        gpu.total_secs / ssd.elapsed.as_secs_f64()
    );
    println!(
        "  channel accels   : {} ({:.2}x, compute-bound: compute {} vs flash {})",
        channel.elapsed,
        gpu.total_secs / channel.elapsed.as_secs_f64(),
        channel.compute,
        channel.flash
    );
    println!("  chip accels      : unsupported (ReId's convolutions exceed the 128-PE array)");
    Ok(())
}
