//! # DeepStore
//!
//! A full-system Rust reproduction of **DeepStore: In-Storage Acceleration
//! for Intelligent Queries** (MICRO-52, 2019): an SSD architecture that
//! embeds neural-network accelerators at the SSD, flash-channel and
//! flash-chip levels so that DNN-based similarity queries run inside the
//! drive instead of hauling the feature database over PCIe to a GPU.
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`nn`] — tensors, layers, similarity-comparison networks, the Table 1
//!   model zoo.
//! * [`flash`] — the SSD simulator substrate (geometry, timing, FTL,
//!   discrete-event engine).
//! * [`systolic`] — the systolic-array accelerator simulator (dataflows,
//!   scratchpads, top-K sorter, cycle/energy accounting).
//! * [`energy`] — unit-energy models and accounting.
//! * [`baseline`] — the GPU+SSD and wimpy-core baselines.
//! * [`core`] — DeepStore itself: in-storage accelerators, the query
//!   engine, the similarity-based query cache, the programming API and the
//!   design-space exploration.
//! * [`workloads`] — application configs, feature databases and query
//!   traces.
//!
//! ## Quickstart
//!
//! ```
//! use deepstore::core::{DeepStore, DeepStoreConfig, QueryRequest};
//! use deepstore::nn::{zoo, ModelGraph};
//!
//! // Build a small in-storage system and load the TIR similarity model.
//! let mut store = DeepStore::in_memory(DeepStoreConfig::small());
//! let model = zoo::tir().seeded(42);
//! let features: Vec<_> = (0..64).map(|i| model.random_feature(i)).collect();
//! let db = store.write_db(&features).unwrap();
//! let model_id = store.load_model(&ModelGraph::from_model(&model)).unwrap();
//!
//! // Run an intelligent query entirely inside the simulated SSD.
//! let query = model.random_feature(1000);
//! let qid = store
//!     .query(QueryRequest::new(query, model_id, db).k(5))
//!     .unwrap();
//! let results = store.results(qid).unwrap();
//! assert_eq!(results.top_k.len(), 5);
//!
//! // Batched queries share one flash pass per (db, model, level) group.
//! let batch: Vec<_> = (0..4)
//!     .map(|i| QueryRequest::new(model.random_feature(2000 + i), model_id, db).k(5))
//!     .collect();
//! let qids = store.query_batch(&batch).unwrap();
//! assert_eq!(qids.len(), 4);
//! ```

pub use deepstore_baseline as baseline;
pub use deepstore_core as core;
pub use deepstore_energy as energy;
pub use deepstore_flash as flash;
pub use deepstore_nn as nn;
pub use deepstore_systolic as systolic;
pub use deepstore_workloads as workloads;
